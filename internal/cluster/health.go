package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"aorta/internal/comm"
	"aorta/internal/frontdoor"
	"aorta/internal/liveness"
	"aorta/internal/vclock"
)

// Router-side shard health defaults. Detector thresholds come from
// internal/liveness (the router reuses the device failure detector's
// state machine); dial backoff reuses the transport pool's constants so
// a dead shard costs the same suppressed-dial microseconds as a dead
// device.
const (
	// DefaultShardProbeInterval is the period of the router's active
	// health probes (a \ping over each shard's persistent tagged
	// connection) when probing is enabled without a chosen interval.
	DefaultShardProbeInterval = 5 * time.Second
	// DefaultShardProbeTimeout bounds one probe round trip.
	DefaultShardProbeTimeout = 2 * time.Second
	// DefaultGraceWindow is how long a shard must stay Down before the
	// router auto-retires it — a network blip shorter than this never
	// amputates a healthy shard.
	DefaultGraceWindow = 10 * time.Second
	// DefaultQuorum is the fraction of the membership that must be
	// reachable for auto-retire to proceed. When the router itself is
	// partitioned, most shards look Down at once; retiring them all
	// would amputate healthy shards, so below quorum the router waits.
	DefaultQuorum = 0.5
	// Breaker defaults mirror comm's per-device circuit breaker: a
	// shard that fails DefaultBreakerThreshold times inside
	// DefaultBreakerWindow is shed for DefaultBreakerCooldown, then
	// granted one half-open trial statement.
	DefaultBreakerThreshold = 5
	DefaultBreakerWindow    = 30 * time.Second
	DefaultBreakerCooldown  = 10 * time.Second
)

// ErrShardShed marks a statement the router shed without touching the
// network: the shard's dial backoff window is open or its circuit
// breaker tripped. Shed failures are not fed to the failure detector —
// they carry no fresh evidence about the shard.
var ErrShardShed = errors.New("cluster: statement shed")

// HandoffFunc moves a retired shard's journaled state into the
// survivors: the auto-retire control loop calls it after Retire with
// the post-retirement owner map. In-process clusters wire it to
// PlanHandoff+Adopt; a wire-only router may leave it nil (retire only,
// handoff stays an operator action).
type HandoffFunc func(ctx context.Context, victim string, owner func(deviceID string) string) (AdoptStats, error)

// DrainReport summarizes one cooperative shard drain.
type DrainReport struct {
	// FlushedIntents is how many journaled intents were pending when the
	// drain began; all of them reached outcomes before handoff.
	FlushedIntents int
	// Devices/Queries/Intents are what moved to survivors.
	Devices, Queries, Intents int
	// Note, when set, replaces the moved-counts summary in the client
	// message — for drainers (like the wire-only router's) that flush
	// the shard but leave adoption to a later offline step.
	Note string
}

// DrainFunc cooperatively drains a running shard: stop new placements,
// flush in-flight evaluations, sync its WAL, and hand devices, queries
// and any leftover intents to the survivors chosen by owner (the
// post-retirement map). The router's DRAIN SHARD statement calls it
// before retiring the shard.
type DrainFunc func(ctx context.Context, victim string, owner func(deviceID string) string) (DrainReport, error)

// HealthConfig tunes the router's per-shard failure detector, the
// shardConn breaker/backoff, and the auto-retire control loop. The zero
// value enables passive detection, backoff and the breaker with the
// defaults above, keeps active probing off (set ProbeInterval), and
// keeps auto-retire off (set AutoRetire).
type HealthConfig struct {
	// Disabled turns the whole health apparatus off: no detector, no
	// breaker, no backoff, no probes — the pre-health router. Escape
	// hatch and the benchmark baseline.
	Disabled bool
	// Clock drives probes, backoff, the breaker window and the grace
	// timer. Nil means wall clock; tests use vclock.Manual.
	Clock vclock.Clock
	// SuspectAfter/DownAfter/DownRetry configure the liveness detector
	// (zero values pick the liveness defaults: 1 / 3 / 15s).
	SuspectAfter int
	DownAfter    int
	DownRetry    time.Duration
	// ProbeInterval enables active \ping probes over each shard's
	// persistent connection; 0 disables probing (passive evidence only).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe; an expired probe counts as failure
	// evidence. Zero picks DefaultShardProbeTimeout.
	ProbeTimeout time.Duration
	// BreakerThreshold failures within BreakerWindow open the shard's
	// circuit for BreakerCooldown. Zero picks defaults; negative
	// disables the breaker.
	BreakerThreshold int
	BreakerWindow    time.Duration
	BreakerCooldown  time.Duration
	// BackoffBase/BackoffMax shape the exponential redial suppression
	// (zero picks comm.DefaultDialBackoff/Max; negative base disables).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// AutoRetire arms the control loop: a shard Down for GraceWindow is
	// retired and handed off without operator action.
	AutoRetire bool
	// GraceWindow is how long Down must persist before auto-retire; zero
	// picks DefaultGraceWindow.
	GraceWindow time.Duration
	// Quorum is the fraction of the membership (excluding the victim)
	// that must be reachable for auto-retire to proceed; zero picks
	// DefaultQuorum.
	Quorum float64
	// Handoff, when set, moves the victim's state after auto-retire.
	Handoff HandoffFunc
	// Drainer, when set, serves the DRAIN SHARD statement.
	Drainer DrainFunc
	// MembershipLog, when set, receives one JSON line per membership
	// event (auto-retire, drain, operator retire) — the router's
	// durable record of who left and why.
	MembershipLog io.Writer
}

func (c HealthConfig) resolve() HealthConfig {
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultShardProbeTimeout
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = DefaultBreakerWindow
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = comm.DefaultDialBackoff
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = comm.DefaultDialBackoffMax
	}
	if c.GraceWindow <= 0 {
		c.GraceWindow = DefaultGraceWindow
	}
	if c.Quorum <= 0 {
		c.Quorum = DefaultQuorum
	}
	return c
}

// MembershipEvent is one entry in the router's membership journal.
type MembershipEvent struct {
	At     time.Time `json:"at"`
	Shard  string    `json:"shard"`
	Action string    `json:"action"` // down, retired, auto-retired, retire-skipped, draining, drained, drain-failed
	Reason string    `json:"reason,omitempty"`
}

// ShardHealth is one shard's row in the router's health view.
type ShardHealth struct {
	State               liveness.State `json:"state"`
	ConsecutiveFailures int            `json:"consecutive_failures,omitempty"`
	Since               time.Time      `json:"since,omitempty"`
	Draining            bool           `json:"draining,omitempty"`
	BreakerOpen         bool           `json:"breaker_open,omitempty"`
	DialBackoff         bool           `json:"dial_backoff,omitempty"`
}

// RouterHealth is the cluster-membership section of the router's
// \metrics frame: per-shard detector state plus the membership journal.
type RouterHealth struct {
	Shards     map[string]ShardHealth `json:"shards"`
	Events     []MembershipEvent      `json:"events,omitempty"`
	AutoRetire bool                   `json:"auto_retire"`
}

// maxMembershipEvents bounds the in-memory membership journal.
const maxMembershipEvents = 1024

// Health snapshots the router's per-shard health view. Nil when the
// health apparatus is disabled.
func (r *Router) Health() *RouterHealth {
	if r.health == nil {
		return nil
	}
	snap := r.health.Snapshot()
	r.mu.Lock()
	out := &RouterHealth{
		Shards:     make(map[string]ShardHealth, len(r.addrs)),
		AutoRetire: r.hcfg.AutoRetire,
		Events:     append([]MembershipEvent(nil), r.memEvents...),
	}
	for id := range r.addrs {
		sh := ShardHealth{Draining: r.draining[id]}
		if h, ok := snap[id]; ok {
			sh.State = h.State
			sh.ConsecutiveFailures = h.ConsecutiveFailures
			sh.Since = h.Since
		}
		if c := r.conns[id]; c != nil {
			sh.BreakerOpen = c.brk.isOpen()
			sh.DialBackoff = c.inBackoff(r.clk.Now())
		}
		out.Shards[id] = sh
	}
	r.mu.Unlock()
	return out
}

// MembershipEvents returns a copy of the membership journal, oldest
// first.
func (r *Router) MembershipEvents() []MembershipEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]MembershipEvent(nil), r.memEvents...)
}

// Detector exposes the shard failure detector (nil when disabled) for
// tests and studies.
func (r *Router) Detector() *liveness.Detector { return r.health }

// ShardCommand sends one statement to a single shard over its
// persistent connection and returns an error unless the shard answered
// OK — the building block for shard-directed controls like the
// wire-only router's forwarded \drain.
func (r *Router) ShardCommand(ctx context.Context, shardID, stmt string) error {
	r.mu.Lock()
	conn := r.conns[shardID]
	r.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("cluster: unknown shard %q", shardID)
	}
	f, err := conn.do(ctx, stmt)
	if err != nil {
		return err
	}
	if !f.OK {
		return fmt.Errorf("cluster: shard %s: %s", shardID, f.Error)
	}
	return nil
}

// recordEvent appends one membership event to the bounded in-memory
// journal, the configured MembershipLog, and the router's logger.
func (r *Router) recordEvent(shard, action, reason string) {
	ev := MembershipEvent{At: r.clk.Now(), Shard: shard, Action: action, Reason: reason}
	r.mu.Lock()
	if len(r.memEvents) >= maxMembershipEvents {
		copy(r.memEvents, r.memEvents[1:])
		r.memEvents = r.memEvents[:len(r.memEvents)-1]
	}
	r.memEvents = append(r.memEvents, ev)
	w := r.hcfg.MembershipLog
	r.mu.Unlock()
	if w != nil {
		if line, err := json.Marshal(ev); err == nil {
			fmt.Fprintf(w, "%s\n", line)
		}
	}
	r.lg.Info("cluster membership event", "shard", shard, "action", action, "reason", reason)
}

// observeShard feeds one piece of evidence about a member shard to the
// failure detector. Evidence about retired shards is dropped.
func (r *Router) observeShard(id string, alive bool) {
	if r.health == nil {
		return
	}
	r.mu.Lock()
	_, member := r.addrs[id]
	r.mu.Unlock()
	if !member {
		return
	}
	r.health.Observe(id, alive)
}

// probeLoop sends a lightweight \ping to every shard each interval over
// the same persistent tagged connection statements use, so detection
// does not depend on client traffic. Evidence flows through the shared
// shardConn path; a probe that times out (shard accepts but never
// answers) is reported as failure explicitly, since the connection
// itself produced no error.
func (r *Router) probeLoop() {
	defer r.wg.Done()
	for {
		if err := vclock.SleepCtx(r.runCtx, r.clk, r.hcfg.ProbeInterval); err != nil {
			return
		}
		r.mu.Lock()
		conns := make([]*shardConn, 0, len(r.conns))
		for _, c := range r.conns {
			conns = append(conns, c)
		}
		r.mu.Unlock()
		var pwg sync.WaitGroup
		for _, c := range conns {
			pwg.Add(1)
			go func(c *shardConn) {
				defer pwg.Done()
				ctx, cancel := vclock.WithTimeout(r.runCtx, r.clk, r.hcfg.ProbeTimeout)
				defer cancel()
				if _, err := c.do(ctx, "\\ping"); err != nil && errors.Is(err, context.DeadlineExceeded) {
					r.observeShard(c.id, false)
				}
			}(c)
		}
		pwg.Wait()
	}
}

// onShardDown arms the grace timer for a shard the detector just moved
// to Down. After GraceWindow, if the shard is still Down and quorum of
// the rest of the membership is reachable, the router retires it and
// runs the handoff; below quorum it re-checks every GraceWindow until
// the partition heals or the shard recovers.
func (r *Router) onShardDown(id, reason string) {
	r.recordEvent(id, "down", reason)
	if !r.hcfg.AutoRetire {
		return
	}
	r.mu.Lock()
	if r.healing[id] {
		r.mu.Unlock()
		return
	}
	r.healing[id] = true
	r.mu.Unlock()
	go func() {
		defer func() {
			r.mu.Lock()
			delete(r.healing, id)
			r.mu.Unlock()
		}()
		for {
			if err := vclock.SleepCtx(r.runCtx, r.clk, r.hcfg.GraceWindow); err != nil {
				return
			}
			if !r.tryAutoRetire(id) {
				return
			}
		}
	}()
}

// tryAutoRetire retires a shard that stayed Down through the grace
// window, then hands off its state. Returns true when the attempt
// should be retried after another grace window (quorum guard held it
// back); false when it is settled either way.
func (r *Router) tryAutoRetire(id string) (retry bool) {
	r.mu.Lock()
	members := r.smap.Shards()
	_, member := r.addrs[id]
	r.mu.Unlock()
	if !member {
		return false
	}
	if r.health.State(id) != liveness.Down {
		// The blip healed during the grace window: no amputation.
		return false
	}
	up := 0
	for _, s := range members {
		if s != id && r.health.State(s) != liveness.Down {
			up++
		}
	}
	need := r.hcfg.Quorum * float64(len(members)-1)
	if float64(up) < need {
		r.recordEvent(id, "retire-skipped",
			fmt.Sprintf("quorum guard: %d/%d peers reachable, need %.1f — suspecting router partition", up, len(members)-1, need))
		return true
	}
	if len(members) == 1 {
		return false
	}
	if err := r.Retire(id); err != nil {
		r.recordEvent(id, "retire-skipped", err.Error())
		return false
	}
	r.recordEvent(id, "auto-retired",
		fmt.Sprintf("down for grace window %s with %d/%d peers reachable", r.hcfg.GraceWindow, up, len(members)-1))
	if r.hcfg.Handoff != nil {
		st, err := r.hcfg.Handoff(r.runCtx, id, r.Map().Owner)
		if err != nil {
			r.recordEvent(id, "handoff-failed", err.Error())
			return false
		}
		r.recordEvent(id, "handoff",
			fmt.Sprintf("adopted %d devices, %d queries, %d intents (%d closed) into survivors",
				st.Devices, st.Queries, st.IntentsAdopted, st.IntentsClosed))
	}
	return false
}

// parseDrainShard recognizes the DRAIN SHARD <id> statement.
func parseDrainShard(stmt string) (string, bool) {
	f := strings.Fields(strings.TrimSuffix(strings.TrimSpace(stmt), ";"))
	if len(f) != 3 || !strings.EqualFold(f[0], "DRAIN") || !strings.EqualFold(f[1], "SHARD") {
		return "", false
	}
	return f[2], true
}

// execDrain serves DRAIN SHARD <id>: the cooperative, zero-loss sibling
// of the crash handoff. The victim stops accepting new placements,
// flushes its in-flight evaluations, syncs its WAL, hands its devices,
// queries and intents to the survivors chosen by the post-retirement
// map, and only then leaves the membership.
func (r *Router) execDrain(ctx context.Context, id, victim string) *Response {
	fail := func(code, format string, args ...any) *Response {
		return &Response{ID: id, OK: false, Code: code, Error: fmt.Sprintf(format, args...)}
	}
	r.mu.Lock()
	drainer := r.hcfg.Drainer
	if drainer == nil {
		r.mu.Unlock()
		return fail("", "cluster: no drainer configured on this router")
	}
	if _, ok := r.addrs[victim]; !ok {
		r.mu.Unlock()
		return fail("", "cluster: unknown shard %q", victim)
	}
	if len(r.smap.Shards()) == 1 {
		r.mu.Unlock()
		return fail("", "cluster: cannot drain the last shard %q", victim)
	}
	if r.draining[victim] {
		r.mu.Unlock()
		return fail(frontdoor.CodeDraining, "cluster: shard %s is already draining", victim)
	}
	var survivors []string
	for _, s := range r.smap.Shards() {
		if s != victim {
			survivors = append(survivors, s)
		}
	}
	prospective, err := r.smap.WithShards(survivors)
	if err != nil {
		r.mu.Unlock()
		return fail("", "cluster: drain %s: %v", victim, err)
	}
	r.draining[victim] = true
	r.mu.Unlock()

	r.recordEvent(victim, "draining", fmt.Sprintf("operator drain, %d survivors", len(survivors)))
	rep, err := drainer(ctx, victim, prospective.Owner)
	if err != nil {
		r.mu.Lock()
		delete(r.draining, victim)
		r.mu.Unlock()
		r.recordEvent(victim, "drain-failed", err.Error())
		return fail("", "cluster: drain %s: %v", victim, err)
	}
	if err := r.Retire(victim); err != nil {
		r.mu.Lock()
		delete(r.draining, victim)
		r.mu.Unlock()
		r.recordEvent(victim, "drain-failed", err.Error())
		return fail("", "cluster: drain %s: retire: %v", victim, err)
	}
	r.mu.Lock()
	delete(r.draining, victim)
	r.mu.Unlock()
	detail := fmt.Sprintf("flushed %d pending intents, moved %d devices, %d queries, %d intents to %s",
		rep.FlushedIntents, rep.Devices, rep.Queries, rep.Intents, strings.Join(survivors, ","))
	if rep.Note != "" {
		detail = rep.Note
	}
	msg := fmt.Sprintf("shard %s drained: %s", victim, detail)
	r.recordEvent(victim, "drained", msg)
	return &Response{ID: id, OK: true, Message: msg}
}

// shardBreaker is a windowed circuit breaker on one shard connection,
// mirroring comm's per-device breaker: BreakerThreshold failures inside
// BreakerWindow open the circuit; after BreakerCooldown one half-open
// trial statement is admitted, and its outcome closes or re-opens the
// circuit. A nil *shardBreaker is a disabled breaker.
type shardBreaker struct {
	threshold        int
	window, cooldown time.Duration

	mu       sync.Mutex
	fails    []time.Time
	open     bool
	openedAt time.Time
	halfOpen bool
}

func newShardBreaker(threshold int, window, cooldown time.Duration) *shardBreaker {
	if threshold < 0 {
		return nil
	}
	return &shardBreaker{threshold: threshold, window: window, cooldown: cooldown}
}

// allow reports whether a statement may proceed, admitting the single
// half-open trial once per cooldown while open.
func (b *shardBreaker) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.halfOpen {
		return false
	}
	if now.Sub(b.openedAt) >= b.cooldown {
		b.halfOpen = true
		return true
	}
	return false
}

// record feeds one statement outcome.
func (b *shardBreaker) record(now time.Time, ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.open, b.halfOpen = false, false
		b.fails = b.fails[:0]
		return
	}
	if b.open {
		// The half-open trial (or a straggler) failed: restart the cooldown.
		b.openedAt = now
		b.halfOpen = false
		return
	}
	b.fails = append(b.fails, now)
	cut := 0
	for cut < len(b.fails) && now.Sub(b.fails[cut]) > b.window {
		cut++
	}
	b.fails = b.fails[cut:]
	if len(b.fails) >= b.threshold {
		b.open, b.openedAt = true, now
		b.fails = b.fails[:0]
	}
}

func (b *shardBreaker) isOpen() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// backoffFor is the exponential redial suppression window after the
// n-th consecutive dial failure (n >= 1): base, 2·base, … capped at max
// — the transport pool's schedule applied per shard.
func backoffFor(base, max time.Duration, fails int) time.Duration {
	d := base
	for i := 1; i < fails && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// sortedShardIDs returns the member shard ids in stable order.
func (r *Router) sortedShardIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.addrs))
	for id := range r.addrs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
