package cluster

import (
	"context"
	"fmt"

	"aorta/internal/core"
)

// PlanDrain partitions a live, drained engine's state among new owners
// — the graceful sibling of PlanHandoff, sourced from the running
// engine instead of a dead shard's journal. Devices go to their new
// owner; queries go to every set (each survivor evaluates them over its
// inherited device slice, duplicates are skipped on adopt); leftover
// pending intents — empty after a full flush, populated only when the
// drain's flush deadline expired — follow their first candidate device,
// exactly as in the crash handoff.
func PlanDrain(eng *core.Engine, owner func(deviceID string) string) (map[string]*HandoffSet, error) {
	devices, queries, pending := eng.DrainState()
	sets := make(map[string]*HandoffSet)
	get := func(shard string) *HandoffSet {
		s, ok := sets[shard]
		if !ok {
			s = &HandoffSet{Shard: shard}
			sets[shard] = s
		}
		return s
	}
	for _, dr := range devices {
		get(owner(dr.ID)).Devices = append(get(owner(dr.ID)).Devices, dr)
	}
	for _, ir := range pending {
		shard := ""
		if len(ir.Candidates) > 0 {
			shard = owner(ir.Candidates[0].ID)
		} else if len(devices) > 0 {
			shard = owner(devices[0].ID)
		}
		if shard == "" {
			return nil, fmt.Errorf("cluster: drained intent %s has no candidate devices to follow", ir.DedupKey)
		}
		get(shard).Intents = append(get(shard).Intents, ir)
	}
	for _, set := range sets {
		set.Queries = append(set.Queries, queries...)
	}
	return sets, nil
}

// EngineDrainer wires DrainFunc for an in-process cluster (the studies,
// tests, and any embedder holding the shard engines directly): drain
// the victim engine, plan the handoff from its live state, adopt every
// set into its surviving engine, then stop the victim. lookup maps a
// shard id to its engine; the victim must resolve, and so must every
// survivor a set lands on.
func EngineDrainer(lookup func(shardID string) *core.Engine) DrainFunc {
	return func(ctx context.Context, victim string, owner func(deviceID string) string) (DrainReport, error) {
		var rep DrainReport
		eng := lookup(victim)
		if eng == nil {
			return rep, fmt.Errorf("cluster: no engine for shard %q", victim)
		}
		st, err := eng.Drain(ctx)
		if err != nil {
			eng.CancelDrain()
			return rep, err
		}
		rep.FlushedIntents = st.PendingAtEntry
		sets, err := PlanDrain(eng, owner)
		if err != nil {
			eng.CancelDrain()
			return rep, err
		}
		for shard, set := range sets {
			dst := lookup(shard)
			if dst == nil {
				eng.CancelDrain()
				return rep, fmt.Errorf("cluster: drain set for unknown survivor %q", shard)
			}
			ast, err := Adopt(ctx, dst, set)
			if err != nil {
				eng.CancelDrain()
				return rep, fmt.Errorf("cluster: adopt into %s: %w", shard, err)
			}
			rep.Devices += ast.Devices
			rep.Queries += ast.Queries
			rep.Intents += ast.IntentsAdopted + ast.IntentsClosed
		}
		eng.Stop()
		return rep, nil
	}
}
