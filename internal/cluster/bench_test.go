package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"

	"aorta/internal/frontdoor"
	"aorta/internal/netsim"
	"aorta/internal/vclock"
)

// benchServe answers every tagged statement with an ok frame — the
// stubShard serve loop without the *testing.T plumbing.
func benchServe(ln net.Listener) {
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				enc := json.NewEncoder(conn)
				for sc.Scan() {
					line := strings.TrimSpace(sc.Text())
					if line == "" {
						continue
					}
					id, _, _ := frontdoor.SplitTag(line)
					if err := enc.Encode(map[string]any{"ok": true, "id": id}); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
}

// BenchmarkRouterFanout measures what the health apparatus costs on the
// fan-out hot path: before routes with health fully disabled, after
// carries the per-shard breaker, backoff bookkeeping, and detector
// evidence on every result. The stubs answer instantly, so the delta
// is pure router overhead.
func BenchmarkRouterFanout(b *testing.B) {
	const shards = 4
	run := func(b *testing.B, hcfg HealthConfig) {
		net := netsim.NewNetwork(vclock.Real{}, 1)
		var infos []ShardInfo
		for i := 1; i <= shards; i++ {
			id := fmt.Sprintf("shard-%d", i)
			ln, err := net.Listen(id)
			if err != nil {
				b.Fatal(err)
			}
			defer ln.Close()
			benchServe(ln)
			infos = append(infos, ShardInfo{ID: id, Addr: id})
		}
		r, err := NewRouter(RouterConfig{Shards: infos, Dialer: net, Health: hcfg})
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()

		ctx := context.Background()
		exec := func() {
			resp, ok := r.Exec(ctx, "", "SHOW DEVICES").(*Response)
			if !ok || !resp.OK {
				b.Fatalf("fan-out failed: %+v", resp)
			}
		}
		exec() // dial all shard connections outside the timed region
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			exec()
		}
	}

	b.Run("before", func(b *testing.B) { run(b, HealthConfig{Disabled: true}) })
	b.Run("after", func(b *testing.B) { run(b, HealthConfig{}) })
}
