package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"aorta/internal/frontdoor"
	"aorta/internal/liveness"
	"aorta/internal/match"
	"aorta/internal/netsim"
	"aorta/internal/sqlparse"
	"aorta/internal/vclock"
)

// ShardInfo names one engine instance and where to reach its front door.
type ShardInfo struct {
	ID   string
	Addr string
}

// DeviceEntry is one device the router knows about: enough to prune
// statement fan-out by device type and id.
type DeviceEntry struct {
	ID   string
	Type string
}

// RouterConfig sizes one Router.
type RouterConfig struct {
	// Shards is the cluster membership (required, at least one).
	Shards []ShardInfo
	// Pins is the manifest's device→shard affinity (optional).
	Pins map[string]string
	// Dialer connects to shard front doors (required; aortad uses
	// netsim.TCP, tests use in-memory networks).
	Dialer netsim.Dialer
	// Logger receives routing events. Nil discards them.
	Logger *slog.Logger
	// Health tunes the per-shard failure detector, breaker/backoff and
	// the auto-retire control loop (see HealthConfig; the zero value
	// enables passive detection with defaults).
	Health HealthConfig
}

// Router fans front-door statements out to the shards whose device
// coverage they can touch and merges the responses into one client
// stream. Its Exec method is a frontdoor.Exec: the router IS a front
// door, speaking the same line protocol as a single-shard daemon, so
// existing clients work unchanged.
//
// Routing rules (see DESIGN.md "Cluster"):
//
//   - A SELECT/CREATE AQ goes to the intersection, over its FROM tables,
//     of the shards holding at least one device of that table's type; an
//     `alias.id = "<device>"` equality conjunct narrows a table to the
//     device's owner shard. A camera-only query therefore never lands on
//     a mote-only shard.
//   - With no device inventory (SetDevices never called) or an empty
//     intersection, management statements broadcast conservatively —
//     devices may register later — while ad-hoc SELECTs answer locally
//     with zero rows (no shard can contribute a tuple).
//   - DROP/STOP/START AQ follow the catalog entry recorded when the query
//     was created, falling back to broadcast for queries the router did
//     not create. SHOW and backslash controls broadcast and merge.
//
// Statements that succeed on some shards and fail on others return a
// typed "partial" error carrying the per-shard codes — never the first
// error alone.
type Router struct {
	lg     *slog.Logger
	dialer netsim.Dialer
	clk    vclock.Clock
	hcfg   HealthConfig
	// health is the per-shard failure detector (nil when disabled): the
	// same Up→Suspect→Down machine internal/liveness runs per device,
	// fed passively by every fan-out result plus the probe loop.
	health    *liveness.Detector
	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup

	mu    sync.Mutex
	smap  *Map
	addrs map[string]string
	conns map[string]*shardConn
	// devices is the known inventory; typesByShard and ownerOf are
	// derived from it under the current shard map.
	devices      []DeviceEntry
	typesByShard map[string]map[string]int
	ownerOf      map[string]string
	// catalog records which shards hold each continuous query, and the
	// parsed SELECT so targets can be recomputed after membership change.
	catalog map[string]*catalogEntry
	// draining marks shards mid-DRAIN; healing marks shards with an
	// armed auto-retire grace timer; memEvents is the bounded
	// membership journal.
	draining  map[string]bool
	healing   map[string]bool
	memEvents []MembershipEvent
}

type catalogEntry struct {
	sel     *sqlparse.Select
	targets []string
}

// NewRouter builds a router over the given shard membership.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Dialer == nil {
		return nil, fmt.Errorf("cluster: RouterConfig.Dialer is required")
	}
	ids := make([]string, 0, len(cfg.Shards))
	addrs := make(map[string]string, len(cfg.Shards))
	for _, s := range cfg.Shards {
		ids = append(ids, s.ID)
		addrs[s.ID] = s.Addr
	}
	smap, err := NewMap(ids, cfg.Pins)
	if err != nil {
		return nil, err
	}
	lg := cfg.Logger
	if lg == nil {
		lg = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	hcfg := cfg.Health.resolve()
	r := &Router{
		lg:       lg,
		dialer:   cfg.Dialer,
		clk:      hcfg.Clock,
		hcfg:     hcfg,
		smap:     smap,
		addrs:    addrs,
		conns:    make(map[string]*shardConn, len(ids)),
		catalog:  make(map[string]*catalogEntry),
		draining: make(map[string]bool),
		healing:  make(map[string]bool),
	}
	r.runCtx, r.runCancel = context.WithCancel(context.Background())
	if !hcfg.Disabled {
		r.health = liveness.New(hcfg.Clock, liveness.Config{
			SuspectAfter: hcfg.SuspectAfter,
			DownAfter:    hcfg.DownAfter,
			DownRetry:    hcfg.DownRetry,
		})
		r.health.Subscribe(func(ev liveness.Event) {
			if ev.To == liveness.Down {
				r.onShardDown(ev.Device, ev.Reason)
			}
		})
	}
	for _, s := range cfg.Shards {
		r.conns[s.ID] = r.newShardConn(s.ID, s.Addr)
	}
	if r.health != nil && hcfg.ProbeInterval > 0 {
		r.wg.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// newShardConn builds the persistent pipelined connection handle for
// one shard, wired to the router's clock, breaker, dial backoff and
// failure detector.
func (r *Router) newShardConn(id, addr string) *shardConn {
	c := &shardConn{
		id: id, addr: addr, dialer: r.dialer, lg: r.lg, clk: r.clk,
	}
	if !r.hcfg.Disabled {
		c.backoffBase = r.hcfg.BackoffBase
		c.backoffMax = r.hcfg.BackoffMax
		c.brk = newShardBreaker(r.hcfg.BreakerThreshold, r.hcfg.BreakerWindow, r.hcfg.BreakerCooldown)
		c.onEvidence = func(alive bool) { r.observeShard(id, alive) }
	}
	return c
}

// Map returns the current shard map.
func (r *Router) Map() *Map {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.smap
}

// SetDevices installs the device inventory the router prunes fan-out
// with. Owners come from the shard map; calling it again (after
// registrations or membership change) recomputes the derived indexes.
func (r *Router) SetDevices(devices []DeviceEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.devices = append([]DeviceEntry(nil), devices...)
	r.reindexLocked()
}

// reindexLocked rebuilds typesByShard/ownerOf from devices under the
// current map, and recomputes every catalog entry's targets.
func (r *Router) reindexLocked() {
	r.typesByShard = make(map[string]map[string]int, len(r.addrs))
	r.ownerOf = make(map[string]string, len(r.devices))
	for _, s := range r.smap.Shards() {
		r.typesByShard[s] = make(map[string]int)
	}
	for _, d := range r.devices {
		owner := r.smap.Owner(d.ID)
		r.ownerOf[d.ID] = owner
		r.typesByShard[owner][d.Type]++
	}
	for _, ce := range r.catalog {
		ce.targets = r.targetsLocked(ce.sel, true)
	}
}

// Retire removes a dead or rebalanced-away shard from the membership:
// its connection closes, the shard map shrinks, and the inventory and
// catalog targets are recomputed so subsequent statements route to the
// survivors. Pair it with PlanHandoff/Adopt to move the shard's journaled
// state; Retire alone only stops routing to it.
func (r *Router) Retire(shardID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.smap.Contains(shardID) {
		return fmt.Errorf("cluster: unknown shard %q", shardID)
	}
	if len(r.smap.Shards()) == 1 {
		return fmt.Errorf("cluster: cannot retire the last shard %q", shardID)
	}
	var survivors []string
	for _, s := range r.smap.Shards() {
		if s != shardID {
			survivors = append(survivors, s)
		}
	}
	smap, err := r.smap.WithShards(survivors)
	if err != nil {
		return err
	}
	r.smap = smap
	if c := r.conns[shardID]; c != nil {
		c.close()
	}
	delete(r.conns, shardID)
	delete(r.addrs, shardID)
	r.reindexLocked()
	r.mu.Unlock()
	if r.health != nil {
		// The shard left the membership; its detector entry would
		// otherwise hold stale Down state if the id ever rejoins.
		r.health.Forget(shardID)
	}
	r.recordEvent(shardID, "retired", "removed from membership")
	r.mu.Lock()
	return nil
}

// Close drops every shard connection and stops the health apparatus.
func (r *Router) Close() {
	r.runCancel()
	r.mu.Lock()
	for _, c := range r.conns {
		c.close()
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// Response is the router's JSON frame: the single-shard daemon response
// shape plus cluster-only fields (per-shard codes on partial failure, the
// aggregated metrics breakdown, and a "shard" column on merged rows).
type Response struct {
	ID      string           `json:"id,omitempty"`
	OK      bool             `json:"ok"`
	Code    string           `json:"code,omitempty"`
	Error   string           `json:"error,omitempty"`
	Message string           `json:"message,omitempty"`
	Rows    []map[string]any `json:"rows,omitempty"`
	Queries []map[string]any `json:"queries,omitempty"`
	Names   []string         `json:"names,omitempty"`
	Photos  []map[string]any `json:"photos,omitempty"`
	// Metrics is the cross-shard aggregate (summed counters, weighted
	// mean latency); Cluster carries the per-shard breakdown.
	Metrics map[string]any  `json:"metrics,omitempty"`
	Cluster *ClusterMetrics `json:"cluster,omitempty"`
	// Shards maps shard id → "ok" or its error code for statements that
	// diverged across shards (Code == "partial") — and for broadcasts, so
	// clients always see who answered.
	Shards map[string]string `json:"shards,omitempty"`
	// Router carries the per-shard health view and the membership
	// journal on \metrics frames.
	Router *RouterHealth `json:"router,omitempty"`
}

// ClusterMetrics is the aggregated \metrics view.
type ClusterMetrics struct {
	Shards    []ShardMetrics `json:"shards"`
	Aggregate map[string]any `json:"aggregate,omitempty"`
}

// ShardMetrics is one shard's slice of the cluster \metrics frame.
type ShardMetrics struct {
	Shard     string         `json:"shard"`
	Metrics   map[string]any `json:"metrics,omitempty"`
	Frontdoor map[string]any `json:"frontdoor,omitempty"`
	Wal       map[string]any `json:"wal,omitempty"`
}

// Exec routes one statement. It is a frontdoor.Exec: serve the router
// behind a frontdoor.Door and the cluster speaks the daemon's exact line
// protocol.
func (r *Router) Exec(ctx context.Context, id, stmt string) any {
	if strings.HasPrefix(stmt, "\\") {
		resp := r.merge(id, stmt, r.fanout(ctx, stmt, r.allShards()))
		if f := strings.Fields(stmt); len(f) > 0 && f[0] == "\\metrics" {
			// The membership view rides the metrics frame even when a dead
			// shard makes the fan-out partial — that is exactly when the
			// client needs it.
			resp.Router = r.Health()
		}
		return resp
	}
	if victim, ok := parseDrainShard(stmt); ok {
		return r.execDrain(ctx, id, victim)
	}
	st, err := sqlparse.Parse(stmt)
	if err != nil {
		return &frontdoor.ErrorResponse{ID: id, Error: err.Error()}
	}
	switch s := st.(type) {
	case *sqlparse.CreateAQ:
		targets := r.targets(s.Select, true)
		resp := r.merge(id, stmt, r.fanout(ctx, stmt, targets))
		if resp.OK {
			r.mu.Lock()
			r.catalog[s.Name] = &catalogEntry{sel: s.Select, targets: targets}
			r.mu.Unlock()
		}
		return resp
	case *sqlparse.Select:
		targets := r.targets(s, false)
		if len(targets) == 0 {
			return &Response{ID: id, OK: true, Message: "0 rows (no shard covers this query)"}
		}
		return r.merge(id, stmt, r.fanout(ctx, stmt, targets))
	case *sqlparse.Explain:
		targets := r.targets(s.Select, true)
		return r.merge(id, stmt, r.fanout(ctx, stmt, targets))
	case *sqlparse.DropAQ:
		resp := r.merge(id, stmt, r.fanout(ctx, stmt, r.queryTargets(s.Name)))
		if resp.OK {
			r.mu.Lock()
			delete(r.catalog, s.Name)
			r.mu.Unlock()
		}
		return resp
	case *sqlparse.StopAQ:
		return r.merge(id, stmt, r.fanout(ctx, stmt, r.queryTargets(s.Name)))
	case *sqlparse.StartAQ:
		return r.merge(id, stmt, r.fanout(ctx, stmt, r.queryTargets(s.Name)))
	default:
		// CREATE ACTION, SHOW, …: cluster-wide state, broadcast.
		return r.merge(id, stmt, r.fanout(ctx, stmt, r.allShards()))
	}
}

func (r *Router) allShards() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.smap.Shards()
}

// queryTargets resolves a query-lifecycle statement to the shards holding
// the query: the catalog entry when the router created it, else every
// shard (the query may predate this router).
func (r *Router) queryTargets(name string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ce, ok := r.catalog[name]; ok && len(ce.targets) > 0 {
		return append([]string(nil), ce.targets...)
	}
	return r.smap.Shards()
}

func (r *Router) targets(sel *sqlparse.Select, broadcastWhenEmpty bool) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.targetsLocked(sel, broadcastWhenEmpty)
	return t
}

// targetsLocked computes the shards a SELECT can touch: for each FROM
// table, the shards holding at least one device of that type, narrowed to
// a single owner when the WHERE pins the table's id to a literal; the
// result is the intersection across tables (every table must be locally
// satisfiable — shards evaluate over their own devices only, there are no
// cross-shard joins). Without inventory the answer is every shard; with
// inventory but an empty intersection, broadcastWhenEmpty picks between
// broadcasting (management: devices may register later) and routing
// nowhere (ad-hoc reads).
func (r *Router) targetsLocked(sel *sqlparse.Select, broadcastWhenEmpty bool) []string {
	all := r.smap.Shards()
	if len(r.devices) == 0 {
		return all
	}
	candidates := make(map[string]bool, len(all))
	for _, s := range all {
		candidates[s] = true
	}
	for _, tr := range sel.From {
		withType := make(map[string]bool)
		for s, counts := range r.typesByShard {
			if counts[tr.Table] > 0 {
				withType[s] = true
			}
		}
		alias := tr.Name()
		owns := func(ref *sqlparse.ColumnRef) bool {
			if ref.Qualifier != "" {
				return ref.Qualifier == alias
			}
			return len(sel.From) == 1
		}
		for _, p := range match.Extract(sel.Where, owns) {
			if p.Attr != "id" || p.Op != match.OpEQ {
				continue
			}
			devID, ok := p.Value.(string)
			if !ok {
				continue
			}
			if owner, known := r.ownerOf[devID]; known {
				for s := range withType {
					if s != owner {
						delete(withType, s)
					}
				}
			}
		}
		for s := range candidates {
			if !withType[s] {
				delete(candidates, s)
			}
		}
	}
	out := make([]string, 0, len(candidates))
	for s := range candidates {
		out = append(out, s)
	}
	sort.Strings(out)
	if len(out) == 0 && broadcastWhenEmpty {
		return all
	}
	return out
}

// shardResult is one shard's answer to a fanned-out statement.
type shardResult struct {
	shard string
	frame *shardFrame
	err   error
}

// fanout sends stmt to every target shard concurrently and collects the
// answers in shard order.
func (r *Router) fanout(ctx context.Context, stmt string, targets []string) []shardResult {
	results := make([]shardResult, len(targets))
	var wg sync.WaitGroup
	for i, shard := range targets {
		r.mu.Lock()
		conn := r.conns[shard]
		r.mu.Unlock()
		if conn == nil {
			results[i] = shardResult{shard: shard, err: fmt.Errorf("cluster: shard %s retired", shard)}
			continue
		}
		wg.Add(1)
		go func(i int, shard string, conn *shardConn) {
			defer wg.Done()
			f, err := conn.do(ctx, stmt)
			results[i] = shardResult{shard: shard, frame: f, err: err}
		}(i, shard, conn)
	}
	wg.Wait()
	return results
}

// merge folds per-shard answers into one client frame. All-success merges
// the payloads (rows/queries/photos tagged with their source shard,
// metrics aggregated); mixed success/failure is the typed "partial" error
// with per-shard codes; uniform failure propagates the shared code.
func (r *Router) merge(id, stmt string, results []shardResult) *Response {
	resp := &Response{ID: id, OK: true}
	if len(results) == 0 {
		resp.Message = "statement routed to no shards"
		return resp
	}
	codes := make(map[string]string, len(results))
	var failures []string
	for _, res := range results {
		switch {
		case res.err != nil:
			codes[res.shard] = frontdoor.CodeUnreachable
			failures = append(failures, fmt.Sprintf("%s: %v", res.shard, res.err))
		case !res.frame.OK:
			code := res.frame.Code
			if code == "" {
				code = "error"
			}
			codes[res.shard] = code
			failures = append(failures, fmt.Sprintf("%s: %s", res.shard, res.frame.Error))
		default:
			codes[res.shard] = "ok"
		}
	}
	if len(failures) > 0 {
		resp.OK = false
		resp.Shards = codes
		resp.Error = strings.Join(failures, "; ")
		resp.Code = frontdoor.CodePartial
		if len(failures) == len(results) {
			// Uniform failure is not partial: propagate the shared code so
			// clients can react by kind, falling back to partial when the
			// shards disagree about why they failed.
			uniform := codes[results[0].shard]
			for _, c := range codes {
				if c != uniform {
					uniform = frontdoor.CodePartial
					break
				}
			}
			resp.Code = uniform
		}
		r.lg.Warn("cluster: statement diverged across shards", "stmt", stmt, "codes", codes)
		return resp
	}

	single := len(results) == 1
	var messages []string
	var metrics []ShardMetrics
	for _, res := range results {
		f := res.frame
		for _, row := range f.Rows {
			resp.Rows = append(resp.Rows, tagShard(row, res.shard))
		}
		for _, q := range f.Queries {
			resp.Queries = append(resp.Queries, tagShard(q, res.shard))
		}
		for _, p := range f.Photos {
			resp.Photos = append(resp.Photos, tagShard(p, res.shard))
		}
		resp.Names = append(resp.Names, f.Names...)
		if f.Message != "" {
			if single {
				messages = append(messages, f.Message)
			} else {
				messages = append(messages, fmt.Sprintf("%s: %s", res.shard, f.Message))
			}
		}
		if f.Metrics != nil {
			metrics = append(metrics, ShardMetrics{
				Shard: res.shard, Metrics: f.Metrics, Frontdoor: f.Frontdoor, Wal: f.Wal,
			})
		}
	}
	if !single {
		resp.Names = dedupSorted(resp.Names)
		resp.Shards = codes
	}
	resp.Message = strings.Join(messages, "; ")
	if len(metrics) > 0 {
		resp.Cluster = &ClusterMetrics{Shards: metrics, Aggregate: aggregateMetrics(metrics)}
		resp.Metrics = resp.Cluster.Aggregate
	}
	return resp
}

// tagShard copies a row map with its source shard added, so merged
// streams stay attributable.
func tagShard(row map[string]any, shard string) map[string]any {
	out := make(map[string]any, len(row)+1)
	for k, v := range row {
		out[k] = v
	}
	out["shard"] = shard
	return out
}

func dedupSorted(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// aggregateMetrics sums the shards' engine counters into one cluster
// view. Counters add; FailureRate is recomputed from the summed totals
// and MeanLatency is weighted by each shard's request count, because
// averaging averages would let an idle shard dilute a loaded one.
func aggregateMetrics(shards []ShardMetrics) map[string]any {
	agg := make(map[string]any)
	var requests, latencyWeighted float64
	for _, sm := range shards {
		for k, v := range sm.Metrics {
			switch val := v.(type) {
			case float64:
				cur, _ := agg[k].(float64)
				agg[k] = cur + val
			case bool:
				cur, _ := agg[k].(bool)
				agg[k] = cur || val
			case map[string]any:
				cur, _ := agg[k].(map[string]any)
				if cur == nil {
					cur = make(map[string]any, len(val))
				}
				for fk, fv := range val {
					if fval, ok := fv.(float64); ok {
						c, _ := cur[fk].(float64)
						cur[fk] = c + fval
					}
				}
				agg[k] = cur
			}
		}
		req, _ := sm.Metrics["Requests"].(float64)
		lat, _ := sm.Metrics["MeanLatency"].(float64)
		requests += req
		latencyWeighted += req * lat
	}
	if requests > 0 {
		if succ, ok := agg["Successes"].(float64); ok {
			agg["FailureRate"] = (requests - succ) / requests
		}
		agg["MeanLatency"] = latencyWeighted / requests
	}
	return agg
}

// shardFrame mirrors the daemon's response frame for decoding; payload
// collections stay map-shaped so merging preserves fields the router
// does not interpret.
type shardFrame struct {
	ID        string           `json:"id"`
	OK        bool             `json:"ok"`
	Code      string           `json:"code"`
	Error     string           `json:"error"`
	Message   string           `json:"message"`
	Rows      []map[string]any `json:"rows"`
	Queries   []map[string]any `json:"queries"`
	Names     []string         `json:"names"`
	Photos    []map[string]any `json:"photos"`
	Metrics   map[string]any   `json:"metrics"`
	Frontdoor map[string]any   `json:"frontdoor"`
	Wal       map[string]any   `json:"wal"`
}

// shardConn is one persistent pipelined connection to a shard's front
// door: statements go out tagged "#r<seq>", a demux goroutine dispatches
// response frames to their waiters by tag, and a transport error fails
// every pending statement and drops the conn — the next statement
// redials.
//
// Two gates keep a dead or flapping shard from stalling every
// statement: an exponential dial backoff (the transport pool's
// schedule, per shard) sheds statements in microseconds while a redial
// would only burn a dial timeout, and a windowed circuit breaker sheds
// while a shard flaps — connects, fails a few statements, dies —
// faster than consecutive-failure counting can catch. Shed statements
// fail with ErrShardShed and carry no detector evidence.
type shardConn struct {
	id     string
	addr   string
	dialer netsim.Dialer
	lg     *slog.Logger
	clk    vclock.Clock
	// backoffBase <= 0 disables redial suppression; brk is nil when the
	// breaker is disabled; onEvidence feeds the router's detector.
	backoffBase time.Duration
	backoffMax  time.Duration
	brk         *shardBreaker
	onEvidence  func(alive bool)

	mu      sync.Mutex
	conn    net.Conn
	seq     int64
	pending map[string]chan *shardFrame
	closed  bool
	// dialFails/dialNotBefore is the redial backoff state.
	dialFails     int
	dialNotBefore time.Time
}

// report records one real statement outcome with the breaker and the
// failure detector. Must be called without c.mu held.
func (c *shardConn) report(alive bool) {
	c.brk.record(c.clk.Now(), alive)
	if c.onEvidence != nil {
		c.onEvidence(alive)
	}
}

// inBackoff reports whether the redial suppression window is open.
func (c *shardConn) inBackoff(now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn == nil && !c.dialNotBefore.IsZero() && now.Before(c.dialNotBefore)
}

func (c *shardConn) do(ctx context.Context, stmt string) (*shardFrame, error) {
	now := c.clk.Now()
	if !c.brk.allow(now) {
		return nil, fmt.Errorf("cluster: shard %s circuit open: %w", c.id, ErrShardShed)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: shard %s connection closed", c.id)
	}
	if c.conn == nil {
		if c.backoffBase > 0 && !c.dialNotBefore.IsZero() && now.Before(c.dialNotBefore) {
			fails := c.dialFails
			c.mu.Unlock()
			return nil, fmt.Errorf("cluster: shard %s in dial backoff (%d consecutive dial failures): %w",
				c.id, fails, ErrShardShed)
		}
		conn, err := c.dialer.Dial(ctx, c.addr)
		if err != nil {
			if c.backoffBase > 0 {
				c.dialFails++
				c.dialNotBefore = now.Add(backoffFor(c.backoffBase, c.backoffMax, c.dialFails))
			}
			c.mu.Unlock()
			c.report(false)
			return nil, fmt.Errorf("cluster: dial shard %s (%s): %w", c.id, c.addr, err)
		}
		c.dialFails = 0
		c.dialNotBefore = time.Time{}
		c.conn = conn
		c.pending = make(map[string]chan *shardFrame)
		go c.readLoop(conn)
	}
	c.seq++
	tag := fmt.Sprintf("r%d", c.seq)
	ch := make(chan *shardFrame, 1)
	c.pending[tag] = ch
	conn := c.conn
	c.mu.Unlock()

	if _, err := fmt.Fprintf(conn, "#%s %s\n", tag, stmt); err != nil {
		c.mu.Lock()
		if c.conn == conn {
			c.failLocked()
		}
		c.mu.Unlock()
		c.report(false)
		return nil, fmt.Errorf("cluster: shard %s write: %w", c.id, err)
	}
	select {
	case f, ok := <-ch:
		if !ok {
			c.report(false)
			return nil, fmt.Errorf("cluster: shard %s connection lost mid-statement", c.id)
		}
		c.report(true)
		return f, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, tag)
		c.mu.Unlock()
		// Cancellation is the caller's doing, not shard evidence; probe
		// timeouts are reported as failures by the probe loop itself.
		return nil, context.Cause(ctx)
	}
}

// readLoop demuxes response frames to waiting statements by tag.
func (c *shardConn) readLoop(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		var f shardFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			c.lg.Warn("cluster: undecodable shard frame", "shard", c.id, "err", err)
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- &f
		}
	}
	c.mu.Lock()
	if c.conn == conn {
		c.failLocked()
	}
	c.mu.Unlock()
}

// failLocked drops the connection and fails every pending statement.
// Caller holds c.mu.
func (c *shardConn) failLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	for tag, ch := range c.pending {
		delete(c.pending, tag)
		close(ch)
	}
}

func (c *shardConn) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.failLocked()
}
