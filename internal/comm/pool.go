package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Pool tuning defaults. All durations are measured on the layer's clock,
// so a scaled lab reaps idle sessions and expires backoff in virtual time.
const (
	// DefaultPoolMaxSessions caps concurrently open pooled sessions.
	DefaultPoolMaxSessions = 128
	// DefaultPoolIdleTTL is how long an unused session survives before the
	// pool reaps it.
	DefaultPoolIdleTTL = 60 * time.Second
	// DefaultDialBackoff is the first suppression window after a failed
	// dial; consecutive failures double it.
	DefaultDialBackoff = time.Second
	// DefaultDialBackoffMax caps the exponential dial backoff.
	DefaultDialBackoffMax = 60 * time.Second
)

// ErrBackoff marks an operation that was suppressed by the dial-failure
// cache: the device refused a recent dial and its backoff window has not
// expired, so the pool did not dial it again. The error also matches
// ErrUnreachable, preserving network data independence — callers treat a
// backed-off device exactly like an unreachable one (no tuple, excluded
// from optimization), just without paying for the dial.
var ErrBackoff = errors.New("comm: device in dial backoff")

// PoolConfig tunes the layer's transport pool.
type PoolConfig struct {
	// MaxSessions caps concurrently open sessions; beyond it the
	// least-recently-used idle session is evicted. 0 selects
	// DefaultPoolMaxSessions. Negative disables pooling entirely: every
	// operation dials and closes its own connection (the pre-pool
	// behaviour, kept for comparison benchmarks).
	MaxSessions int
	// IdleTTL reaps sessions unused for this long. 0 selects
	// DefaultPoolIdleTTL; negative keeps idle sessions forever.
	IdleTTL time.Duration
	// BackoffBase is the first suppression window after a failed dial;
	// consecutive failures double it up to BackoffMax. 0 selects
	// DefaultDialBackoff; negative disables the dial-failure cache.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff (0 selects
	// DefaultDialBackoffMax).
	BackoffMax time.Duration
}

// resolve fills zero values with the defaults.
func (c PoolConfig) resolve() PoolConfig {
	if c.MaxSessions == 0 {
		c.MaxSessions = DefaultPoolMaxSessions
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = DefaultPoolIdleTTL
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = DefaultDialBackoff
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = DefaultDialBackoffMax
	}
	return c
}

// pool owns the layer's persistent sessions, keyed by device ID.
//
// Ownership model: sessions opened through the pool belong to the pool,
// not to the operation that triggered the dial. Operations borrow a
// session via Layer.WithSession; concurrent borrowers of the same device
// share one live session (Session is safe for concurrent use), and the
// per-entry dial mutex serializes dialing so simultaneous cache misses
// produce exactly one dial instead of racing.
type pool struct {
	layer *Layer

	mu      sync.Mutex
	cfg     PoolConfig
	entries map[string]*poolEntry
	backoff map[string]*backoffState
}

// poolEntry is the pool's per-device slot. refs, sess and lastUsed are
// guarded by pool.mu; dialMu serializes the validate-or-dial step so only
// one borrower dials while the rest wait and share the result.
type poolEntry struct {
	id     string
	dialMu sync.Mutex

	sess     *Session
	refs     int
	lastUsed time.Time
}

// backoffState is one dial-failure cache entry.
type backoffState struct {
	failures int
	until    time.Time
}

func newPool(l *Layer, cfg PoolConfig) *pool {
	return &pool{
		layer:   l,
		cfg:     cfg.resolve(),
		entries: make(map[string]*poolEntry),
		backoff: make(map[string]*backoffState),
	}
}

// WithSession runs fn with a live pooled session to the device. The
// session is shared with concurrent operations on the same device and
// stays open afterwards for reuse. A cached session whose reader has died
// is evicted and re-dialed before fn runs; if the session breaks while fn
// is running, the pool transparently re-dials once and retries fn. A
// device whose dial just failed is not dialed again until its backoff
// window expires — the call fails fast with an error matching ErrBackoff
// (and ErrUnreachable).
func (l *Layer) WithSession(ctx context.Context, id string, fn func(*Session) error) error {
	return l.pool.with(ctx, id, fn)
}

func (p *pool) with(ctx context.Context, id string, fn func(*Session) error) error {
	// Liveness gate + circuit breaker first: a Down or breaker-open
	// device is shed before any pool or dial work.
	if err := p.layer.shed(id); err != nil {
		return err
	}
	opErr := p.run(ctx, id, fn)
	// Every operation that got past the gate reports evidence to the
	// failure detector and the breaker (no-contact errors are filtered
	// inside note).
	p.layer.note(id, opErr)
	return opErr
}

func (p *pool) run(ctx context.Context, id string, fn func(*Session) error) error {
	if p.disabled() {
		s, err := p.layer.Connect(ctx, id)
		if err != nil {
			return err
		}
		defer s.Close()
		return fn(s)
	}
	for attempt := 0; ; attempt++ {
		e, s, err := p.acquire(ctx, id)
		if err != nil {
			return err
		}
		opErr := fn(s)
		broken := !s.alive()
		p.release(e, s, broken)
		// A session that died under fn gets one transparent redial; if
		// that dial fails too, acquire records the backoff entry and the
		// next attempt fails fast.
		if opErr != nil && broken && attempt == 0 {
			continue
		}
		return opErr
	}
}

func (p *pool) disabled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.MaxSessions < 0
}

// acquire returns a live session for id, reusing the cached one when its
// reader is still alive and dialing otherwise. The caller must hand the
// returned entry back via release.
func (p *pool) acquire(ctx context.Context, id string) (*poolEntry, *Session, error) {
	m := &p.layer.metrics

	p.mu.Lock()
	victims := p.reapIdleLocked()
	e := p.entries[id]
	if e == nil {
		e = &poolEntry{id: id}
		p.entries[id] = e
	}
	e.refs++
	p.mu.Unlock()
	closeAll(victims)

	e.dialMu.Lock()
	defer e.dialMu.Unlock()

	p.mu.Lock()
	if s := e.sess; s != nil {
		// Liveness check: reuse only sessions whose reader goroutine is
		// still running; a dead one is evicted and re-dialed below.
		if s.alive() {
			e.lastUsed = p.layer.clk.Now()
			m.PoolHits.Add(1)
			p.mu.Unlock()
			return e, s, nil
		}
		p.evictLocked(e, &m.PoolBroken)
		p.mu.Unlock()
		s.Close()
		p.mu.Lock()
	}
	if wait, suppressed := p.backoffRemainingLocked(id); suppressed {
		p.releaseLocked(e)
		m.SuppressedDials.Add(1)
		p.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %w: %s suppressed for another %v", ErrUnreachable, ErrBackoff, id, wait)
	}
	victims = p.makeRoomLocked(e)
	p.mu.Unlock()
	closeAll(victims)

	s, err := p.layer.Connect(ctx, id)

	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		p.noteDialFailureLocked(id, err)
		p.releaseLocked(e)
		return nil, nil, err
	}
	delete(p.backoff, id)
	e.sess = s
	e.lastUsed = p.layer.clk.Now()
	m.PoolMisses.Add(1)
	m.OpenSessions.Add(1)
	return e, s, nil
}

// release hands a borrowed session back. A session that broke during the
// operation is evicted so the next borrower re-dials instead of failing
// on a dead connection.
func (p *pool) release(e *poolEntry, s *Session, broken bool) {
	var toClose *Session
	p.mu.Lock()
	if broken && e.sess == s {
		p.evictLocked(e, &p.layer.metrics.PoolBroken)
		toClose = s
	}
	e.lastUsed = p.layer.clk.Now()
	p.releaseLocked(e)
	p.mu.Unlock()
	if toClose != nil {
		toClose.Close()
	}
}

// releaseLocked drops one reference and garbage-collects sessionless
// entries (e.g. unknown or unreachable devices) so the entry map cannot
// grow without bound.
func (p *pool) releaseLocked(e *poolEntry) {
	e.refs--
	if e.refs == 0 && e.sess == nil {
		delete(p.entries, e.id)
	}
}

// evictLocked detaches an entry's session and updates counters. The
// caller closes the session outside pool.mu.
func (p *pool) evictLocked(e *poolEntry, counter *atomic.Int64) {
	if e.sess == nil {
		return
	}
	e.sess = nil
	counter.Add(1)
	p.layer.metrics.OpenSessions.Add(-1)
	if e.refs == 0 {
		delete(p.entries, e.id)
	}
}

// reapIdleLocked evicts sessions idle past the TTL and returns them for
// closing outside the lock. Reaping is lazy — it runs on every acquire
// and on explicit ReapIdleSessions calls — so it needs no background
// goroutine and stays deterministic under manual test clocks.
func (p *pool) reapIdleLocked() []*Session {
	if p.cfg.IdleTTL < 0 {
		return nil
	}
	now := p.layer.clk.Now()
	var victims []*Session
	for _, e := range p.entries {
		if e.sess != nil && e.refs == 0 && now.Sub(e.lastUsed) > p.cfg.IdleTTL {
			victims = append(victims, e.sess)
			p.evictLocked(e, &p.layer.metrics.PoolExpired)
		}
	}
	return victims
}

// makeRoomLocked enforces the MaxSessions cap by evicting
// least-recently-used idle sessions. Sessions with live borrowers are
// never evicted; if every session is busy the cap is exceeded rather than
// blocking the caller (a soft cap).
func (p *pool) makeRoomLocked(current *poolEntry) []*Session {
	var victims []*Session
	for p.openLocked() >= p.cfg.MaxSessions {
		var lru *poolEntry
		for _, e := range p.entries {
			if e == current || e.sess == nil || e.refs > 0 {
				continue
			}
			if lru == nil || e.lastUsed.Before(lru.lastUsed) {
				lru = e
			}
		}
		if lru == nil {
			break
		}
		victims = append(victims, lru.sess)
		p.evictLocked(lru, &p.layer.metrics.PoolEvictions)
	}
	return victims
}

func (p *pool) openLocked() int {
	n := 0
	for _, e := range p.entries {
		if e.sess != nil {
			n++
		}
	}
	return n
}

// backoffRemainingLocked reports whether id is inside its dial-failure
// backoff window and, if so, for how much longer.
func (p *pool) backoffRemainingLocked(id string) (time.Duration, bool) {
	b := p.backoff[id]
	if b == nil {
		return 0, false
	}
	wait := b.until.Sub(p.layer.clk.Now())
	if wait <= 0 {
		return 0, false
	}
	return wait, true
}

// noteDialFailureLocked records a failed dial in the backoff cache,
// doubling the suppression window per consecutive failure. Caller
// cancellation and unknown devices are not the device's fault and do not
// enter backoff.
func (p *pool) noteDialFailureLocked(id string, err error) {
	if p.cfg.BackoffBase < 0 || errors.Is(err, ErrUnknownDevice) || errors.Is(err, context.Canceled) {
		return
	}
	b := p.backoff[id]
	if b == nil {
		b = &backoffState{}
		p.backoff[id] = b
	}
	b.failures++
	shift := b.failures - 1
	if shift > 16 {
		shift = 16
	}
	window := p.cfg.BackoffBase << uint(shift)
	if window > p.cfg.BackoffMax || window <= 0 {
		window = p.cfg.BackoffMax
	}
	b.until = p.layer.clk.Now().Add(window)
}

// forget tears down one device's pool state: its session (if any) is
// closed and its backoff entry dropped. Borrowed sessions are detached —
// in-flight operations finish on the dying connection and fail naturally.
func (p *pool) forget(id string) {
	var victim *Session
	p.mu.Lock()
	if e := p.entries[id]; e != nil && e.sess != nil {
		victim = e.sess
		p.evictLocked(e, &p.layer.metrics.PoolDrained)
	}
	delete(p.backoff, id)
	p.mu.Unlock()
	if victim != nil {
		victim.Close()
	}
}

// clearBackoff drops one device's dial-failure cache entry so the next
// operation dials immediately.
func (p *pool) clearBackoff(id string) {
	p.mu.Lock()
	delete(p.backoff, id)
	p.mu.Unlock()
}

// drain closes every pooled session and clears the backoff cache. The
// pool stays usable: the next operation simply re-dials.
func (p *pool) drain() []*Session {
	p.mu.Lock()
	var victims []*Session
	for _, e := range p.entries {
		if e.sess != nil {
			victims = append(victims, e.sess)
			p.evictLocked(e, &p.layer.metrics.PoolDrained)
		}
	}
	p.backoff = make(map[string]*backoffState)
	p.mu.Unlock()
	return victims
}

// configure swaps the pool tuning, draining sessions opened under the old
// configuration.
func (p *pool) configure(cfg PoolConfig) {
	closeAll(p.drain())
	p.mu.Lock()
	p.cfg = cfg.resolve()
	p.mu.Unlock()
}

func closeAll(victims []*Session) {
	for _, s := range victims {
		s.Close()
	}
}

// ConfigurePool replaces the layer's transport-pool tuning. Sessions
// opened under the previous configuration are drained.
func (l *Layer) ConfigurePool(cfg PoolConfig) { l.pool.configure(cfg) }

// ReapIdleSessions evicts pooled sessions idle longer than the pool's
// IdleTTL on the layer's clock and reports how many it closed. Reaping
// also happens lazily on every pooled operation; this entry point exists
// for callers that want deterministic reclamation (tests, shutdown paths).
func (l *Layer) ReapIdleSessions() int {
	l.pool.mu.Lock()
	victims := l.pool.reapIdleLocked()
	l.pool.mu.Unlock()
	closeAll(victims)
	return len(victims)
}

// Close drains the transport pool: every pooled session is closed and the
// dial-failure cache cleared. The layer remains usable afterwards — the
// next operation re-dials — so Close is safe to call on engine shutdown
// even when ad-hoc queries may still follow.
func (l *Layer) Close() error {
	closeAll(l.pool.drain())
	return nil
}
