package comm

import (
	"context"
	"errors"
	"testing"
	"time"

	"aorta/internal/netsim"
)

// TestRequestTimeoutMidSession: a device that answers the dial but then
// becomes arbitrarily slow must be broken out of by the per-request
// TIMEOUT, not hang the engine (paper §4: "a camera may suffer from
// network connection delay").
func TestRequestTimeoutMidSession(t *testing.T) {
	f := newFarm(t)
	f.layer.SetTimeout("camera", 3*time.Second)
	s, err := f.layer.Connect(context.Background(), "camera-1")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// First request on a healthy link succeeds.
	if _, err := s.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The link degrades: every write now takes 10 virtual seconds,
	// exceeding the 3-second TIMEOUT.
	f.network.SetLink("camera-1", netsim.LinkConfig{Latency: 10 * time.Second})
	start := time.Now()
	_, err = s.Probe(context.Background())
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("probe blocked %v wall time; TIMEOUT did not break it", wall)
	}
}

// TestCallerContextBeatsTimeout: explicit caller cancellation is reported
// as the caller's error, not as a device timeout.
func TestCallerContextBeatsTimeout(t *testing.T) {
	f := newFarm(t)
	f.network.SetLink("camera-1", netsim.LinkConfig{Latency: 30 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := f.layer.Probe(ctx, "camera-1")
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if errors.Is(err, ErrTimeout) {
			t.Fatalf("caller cancellation misreported as device timeout: %v", err)
		}
		if err == nil {
			t.Fatal("probe succeeded despite cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled probe never returned")
	}
}

// TestStaleResponsesSkipped: when an earlier request timed out, its late
// response must not be delivered to the next request on the session.
func TestStaleResponsesSkipped(t *testing.T) {
	f := newFarm(t)
	f.layer.SetTimeout("camera", 2*time.Second)
	s, err := f.layer.Connect(context.Background(), "camera-1")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Slow the link so the first probe times out but its response still
	// arrives later.
	f.network.SetLink("camera-1", netsim.LinkConfig{Latency: 4 * time.Second})
	if _, err := s.Probe(context.Background()); !errors.Is(err, ErrTimeout) {
		t.Fatalf("first probe err = %v, want timeout", err)
	}
	// Restore the link and let the timed-out request's delayed write and
	// late response drain (they are discarded by the session reader).
	f.network.SetLink("camera-1", netsim.LinkConfig{})
	time.Sleep(100 * time.Millisecond) // 10 virtual seconds at 100×
	res, err := s.Probe(context.Background())
	if err != nil {
		t.Fatalf("second probe: %v", err)
	}
	if res.DeviceID != "camera-1" {
		t.Errorf("second probe result = %+v", res)
	}
}
