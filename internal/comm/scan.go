package comm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ScanReport describes the outcome of one virtual-table scan.
type ScanReport struct {
	// Scanned is the number of devices that produced a tuple.
	Scanned int
	// Skipped is the number of registered devices that were unreachable
	// or failed mid-read; their tuples are simply absent (network data
	// independence).
	Skipped int
	// InBackoff is the subset of Skipped that was not even dialed because
	// the device is inside its dial-failure backoff window.
	InBackoff int
}

// scanPlan is the per-(type, attrs) scan layout, computed once and cached:
// the projected schema plus the static/sensory split as column indexes.
// The device type's schema is published once from its catalog; every scan
// of the same projection reuses the plan.
type scanPlan struct {
	schema  *Schema
	static  []int // column indexes filled from the registry
	sensory []int // column indexes acquired from the live device
}

// scanPlanFor returns the cached scan plan for one device type and
// attribute projection, building and caching it on first use.
func (l *Layer) scanPlanFor(deviceType string, attrs []string) (*scanPlan, error) {
	key := deviceType + "\x00" + strings.Join(attrs, "\x00")
	l.planMu.RLock()
	p, ok := l.plans[key]
	l.planMu.RUnlock()
	if ok {
		return p, nil
	}

	cat, ok := l.reg.Catalog(deviceType)
	if !ok {
		return nil, fmt.Errorf("comm: no catalog for device type %q", deviceType)
	}
	if attrs == nil {
		for _, a := range cat.Attributes {
			attrs = append(attrs, a.Name)
		}
	}
	// Every scan tuple carries the device id, whether or not it was asked
	// for (it keys routing and action binding downstream).
	hasID := false
	for _, name := range attrs {
		if name == "id" {
			hasID = true
			break
		}
	}
	if !hasID {
		attrs = append([]string{"id"}, attrs...)
	}
	p = &scanPlan{}
	names := make([]string, len(attrs))
	kinds := make([]Kind, len(attrs))
	for i, name := range attrs {
		def, ok := cat.Attr(name)
		if !ok {
			return nil, fmt.Errorf("comm: device type %q has no attribute %q", deviceType, name)
		}
		names[i] = name
		kinds[i] = KindOf(def.Type)
		if def.Sensory {
			p.sensory = append(p.sensory, i)
		} else {
			p.static = append(p.static, i)
		}
	}
	p.schema = NewSchema(names, kinds)

	l.planMu.Lock()
	l.plans[key] = p
	l.planMu.Unlock()
	return p, nil
}

// ScanBatch materializes the virtual relational table for a device type as
// one columnar batch: one row per currently reachable device of that type
// (paper §3.2), one typed column per attribute.
//
// attrs selects the columns; nil means every attribute in the device
// type's catalog, and "id" is always included. Non-sensory attributes come
// from the registry; sensory attributes are acquired from the device over
// one pooled session. Devices are scanned concurrently; rows appear in
// device-ID order.
//
// The returned batch is reference-counted with one reference held by the
// caller, who must Release it when done.
func (l *Layer) ScanBatch(ctx context.Context, deviceType string, attrs []string) (*Batch, *ScanReport, error) {
	plan, err := l.scanPlanFor(deviceType, attrs)
	if err != nil {
		return nil, nil, err
	}

	devices := l.devicesOfTypeRef(deviceType)
	nCols := plan.schema.Len()

	// Each device goroutine fills its own slice of one flat scratch
	// array; columnar append happens sequentially afterwards so typed
	// columns can demote without racing.
	scratch := make([]any, len(devices)*nCols)
	ok := make([]bool, len(devices))
	backoff := make([]bool, len(devices))
	var wg sync.WaitGroup
	for i, dev := range devices {
		wg.Add(1)
		go func(i int, dev *DeviceInfo) {
			defer wg.Done()
			vals := scratch[i*nCols : (i+1)*nCols]
			ok[i], backoff[i] = l.scanDeviceCols(ctx, dev, plan, vals)
		}(i, dev)
	}
	wg.Wait()

	report := &ScanReport{}
	b := NewBatch(plan.schema)
	for i := range devices {
		if !ok[i] {
			report.Skipped++
			if backoff[i] {
				report.InBackoff++
			}
			continue
		}
		report.Scanned++
		b.Append(scratch[i*nCols : (i+1)*nCols])
	}
	return b, report, nil
}

// Scan is the row-map compatibility wrapper over ScanBatch: it
// materializes the batch as []Tuple and releases it. New code should use
// ScanBatch and keep the columnar form.
func (l *Layer) Scan(ctx context.Context, deviceType string, attrs []string) ([]Tuple, *ScanReport, error) {
	b, report, err := l.ScanBatch(ctx, deviceType, attrs)
	if err != nil {
		return nil, nil, err
	}
	var out []Tuple
	if b.Len() > 0 {
		out = b.Tuples()
	}
	b.Release()
	return out, report, nil
}

// scanDeviceCols fills one device's row into vals (schema column order)
// over a pooled session. ok=false means the device was unreachable or a
// sensory read failed and the row must be dropped; inBackoff reports
// whether it was skipped without dialing because of its dial-failure
// backoff window.
//
// Static values are taken from the registry entry by reference — registry
// entries are immutable after Register, and batch consumers treat tuple
// values as read-only — so a scan no longer deep-copies every device's
// Static map per epoch.
func (l *Layer) scanDeviceCols(ctx context.Context, dev *DeviceInfo, plan *scanPlan, vals []any) (ok, inBackoff bool) {
	for _, i := range plan.static {
		vals[i] = dev.Static[plan.schema.Name(i)]
	}
	if len(plan.sensory) == 0 {
		return true, false
	}
	err := l.WithSession(ctx, dev.ID, func(s *Session) error {
		for _, i := range plan.sensory {
			v, err := s.Read(ctx, plan.schema.Name(i))
			if err != nil {
				return err
			}
			vals[i] = v
		}
		return nil
	})
	if err != nil {
		return false, errors.Is(err, ErrBackoff)
	}
	return true, false
}
