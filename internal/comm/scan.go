package comm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ScanReport describes the outcome of one virtual-table scan.
type ScanReport struct {
	// Scanned is the number of devices that produced a tuple.
	Scanned int
	// Skipped is the number of registered devices that were unreachable
	// or failed mid-read; their tuples are simply absent (network data
	// independence).
	Skipped int
	// InBackoff is the subset of Skipped that was not even dialed because
	// the device is inside its dial-failure backoff window.
	InBackoff int
}

// Scan materializes the virtual relational table for a device type: one
// tuple per currently reachable device of that type (paper §3.2).
//
// attrs selects the columns; nil means every attribute in the device
// type's catalog. Non-sensory attributes come from the registry; sensory
// attributes are acquired from the device over one session. Devices are
// scanned concurrently.
func (l *Layer) Scan(ctx context.Context, deviceType string, attrs []string) ([]Tuple, *ScanReport, error) {
	cat, ok := l.reg.Catalog(deviceType)
	if !ok {
		return nil, nil, fmt.Errorf("comm: no catalog for device type %q", deviceType)
	}
	if attrs == nil {
		for _, a := range cat.Attributes {
			attrs = append(attrs, a.Name)
		}
	}
	// Split requested columns into static and sensory.
	var sensory, static []string
	for _, name := range attrs {
		def, ok := cat.Attr(name)
		if !ok {
			return nil, nil, fmt.Errorf("comm: device type %q has no attribute %q", deviceType, name)
		}
		if def.Sensory {
			sensory = append(sensory, name)
		} else {
			static = append(static, name)
		}
	}

	devices := l.DevicesOfType(deviceType)
	type row struct {
		id        string
		tuple     Tuple
		inBackoff bool
	}
	rows := make([]row, len(devices))
	var wg sync.WaitGroup
	for i, dev := range devices {
		wg.Add(1)
		go func(i int, dev *DeviceInfo) {
			defer wg.Done()
			t, inBackoff := l.scanDevice(ctx, dev, static, sensory)
			rows[i] = row{id: dev.ID, tuple: t, inBackoff: inBackoff}
		}(i, dev)
	}
	wg.Wait()

	report := &ScanReport{}
	var out []Tuple
	for _, r := range rows {
		if r.tuple == nil {
			report.Skipped++
			if r.inBackoff {
				report.InBackoff++
			}
			continue
		}
		report.Scanned++
		out = append(out, r.tuple)
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := out[i]["id"].(string)
		b, _ := out[j]["id"].(string)
		return a < b
	})
	return out, report, nil
}

// scanDevice builds one tuple over a pooled session, or returns nil when
// the device is unreachable or a sensory read fails. Concurrent scans of
// the same device share one live session instead of racing dials. The
// second return reports whether the device was skipped without dialing
// because it is inside its dial-failure backoff window.
func (l *Layer) scanDevice(ctx context.Context, dev *DeviceInfo, static, sensory []string) (Tuple, bool) {
	t := make(Tuple, len(static)+len(sensory)+1)
	t["id"] = dev.ID
	for _, name := range static {
		if v, ok := dev.Static[name]; ok {
			t[name] = v
		} else {
			t[name] = nil
		}
	}
	if len(sensory) == 0 {
		return t, false
	}
	err := l.WithSession(ctx, dev.ID, func(s *Session) error {
		for _, name := range sensory {
			v, err := s.Read(ctx, name)
			if err != nil {
				return err
			}
			t[name] = v
		}
		return nil
	})
	if err != nil {
		return nil, errors.Is(err, ErrBackoff)
	}
	return t, false
}
