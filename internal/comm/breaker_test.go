package comm

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
)

func newBreakerLayer(t *testing.T, cfg BreakerConfig) (*Layer, *vclock.Manual) {
	t.Helper()
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	reg, err := profile.DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	l := New(netsim.NewNetwork(clk, 1), clk, reg)
	l.ConfigureBreaker(cfg)
	return l, clk
}

// The breaker counts failures in a rolling window, so a flapping device —
// which never accumulates enough *consecutive* failures for the liveness
// detector — still trips it and gets its load shed.
func TestBreakerOpensOnWindowedFailures(t *testing.T) {
	l, clk := newBreakerLayer(t, BreakerConfig{Threshold: 3, Window: 30 * time.Second, Cooldown: 10 * time.Second})
	b := l.breaker
	id := "cam-1"

	// Alternate failure and success... without successes clearing history?
	// Success clears the state entirely, so use failures spaced inside the
	// window instead.
	for i := 0; i < 2; i++ {
		if err := b.allow(id); err != nil {
			t.Fatalf("allow before threshold: %v", err)
		}
		b.record(id, false)
		clk.Advance(5 * time.Second)
	}
	if err := b.allow(id); err != nil {
		t.Fatalf("allow before threshold: %v", err)
	}
	b.record(id, false) // third failure inside 30s → open

	err := b.allow(id)
	if err == nil {
		t.Fatal("breaker did not open after 3 failures in the window")
	}
	if !errors.Is(err, ErrBreakerOpen) || !errors.Is(err, ErrUnreachable) {
		t.Errorf("shed error %v does not match ErrBreakerOpen+ErrUnreachable", err)
	}
	if got := l.Metrics().Snapshot().BreakerOpens; got != 1 {
		t.Errorf("BreakerOpens = %d, want 1", got)
	}
	if got := l.Metrics().Snapshot().BreakerShed; got == 0 {
		t.Error("BreakerShed = 0, want > 0")
	}
}

func TestBreakerHalfOpenTrial(t *testing.T) {
	l, clk := newBreakerLayer(t, BreakerConfig{Threshold: 2, Window: 30 * time.Second, Cooldown: 10 * time.Second})
	b := l.breaker
	id := "cam-1"
	b.record(id, false)
	b.record(id, false) // open
	if err := b.allow(id); err == nil {
		t.Fatal("breaker not open")
	}

	clk.Advance(11 * time.Second)
	// First caller after the cooldown gets the half-open trial…
	if err := b.allow(id); err != nil {
		t.Fatalf("half-open trial refused: %v", err)
	}
	// …and concurrent callers are still shed while it is in flight.
	if err := b.allow(id); err == nil {
		t.Fatal("second caller admitted during half-open trial")
	}
	// Failed trial re-opens for a fresh cooldown.
	b.record(id, false)
	if err := b.allow(id); err == nil {
		t.Fatal("breaker closed after failed trial")
	}
	clk.Advance(11 * time.Second)
	if err := b.allow(id); err != nil {
		t.Fatalf("second trial refused: %v", err)
	}
	// Successful trial closes the breaker completely.
	b.record(id, true)
	for i := 0; i < 3; i++ {
		if err := b.allow(id); err != nil {
			t.Fatalf("closed breaker shed a call: %v", err)
		}
	}
}

// The half-open trial slot under contention: when the cooldown expires
// and a stampede of callers arrives at once, exactly one wins the trial
// and every loser is shed with the breaker-open error. Run with -race
// this also proves allow() is safe to call from many goroutines.
func TestBreakerHalfOpenConcurrentTrials(t *testing.T) {
	l, clk := newBreakerLayer(t, BreakerConfig{Threshold: 2, Window: 30 * time.Second, Cooldown: 10 * time.Second})
	b := l.breaker
	id := "cam-1"
	b.record(id, false)
	b.record(id, false) // open
	clk.Advance(11 * time.Second)

	const callers = 32
	var (
		start    = make(chan struct{})
		wg       sync.WaitGroup
		admitted atomic.Int32
	)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := b.allow(id); err == nil {
				admitted.Add(1)
			} else {
				errs[i] = err
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := admitted.Load(); got != 1 {
		t.Fatalf("%d callers admitted to the half-open trial, want exactly 1", got)
	}
	// The issue calls the shed error "ErrBackoff"; this layer's breaker
	// sheds with ErrBreakerOpen, which like ErrBackoff also matches
	// ErrUnreachable so shed devices degrade to absent tuples.
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrBreakerOpen) || !errors.Is(err, ErrUnreachable) {
			t.Fatalf("loser %d error %v does not match ErrBreakerOpen+ErrUnreachable", i, err)
		}
	}

	// The winner's success closes the breaker for everyone.
	b.record(id, true)
	for i := 0; i < callers; i++ {
		if err := b.allow(id); err != nil {
			t.Fatalf("closed breaker shed a call: %v", err)
		}
	}
}

// An abandoned trial (no evidence either way) releases the half-open
// slot instead of wedging the breaker.
func TestBreakerAbandonedTrial(t *testing.T) {
	l, clk := newBreakerLayer(t, BreakerConfig{Threshold: 1, Window: 30 * time.Second, Cooldown: 5 * time.Second})
	b := l.breaker
	id := "m1"
	b.record(id, false) // open
	clk.Advance(6 * time.Second)
	if err := b.allow(id); err != nil {
		t.Fatalf("trial refused: %v", err)
	}
	b.abandon(id)
	if err := b.allow(id); err != nil {
		t.Fatalf("trial slot not released after abandon: %v", err)
	}
}

func TestBreakerDisabled(t *testing.T) {
	l, _ := newBreakerLayer(t, BreakerConfig{Threshold: -1})
	b := l.breaker
	for i := 0; i < 20; i++ {
		b.record("m1", false)
	}
	if err := b.allow("m1"); err != nil {
		t.Fatalf("disabled breaker shed a call: %v", err)
	}
}

// End-to-end through the pooled path: a gated (Down) device is shed with
// ErrShed before any dial, and the observer receives evidence only for
// operations that reached the network.
func TestGateAndObserverThroughPool(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	network := netsim.NewNetwork(clk, 1)
	reg, err := profile.DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	l := New(network, clk, reg)
	l.ConfigurePool(PoolConfig{BackoffBase: -1})

	down := map[string]bool{}
	var evidence []struct {
		id    string
		alive bool
	}
	l.SetGate(func(id string) bool { return !down[id] })
	l.SetObserver(func(id string, alive bool) {
		evidence = append(evidence, struct {
			id    string
			alive bool
		}{id, alive})
	})
	if err := l.Register(DeviceInfo{ID: "m1", Type: profile.DeviceSensor, Addr: "m1"}); err != nil {
		t.Fatal(err)
	}

	// No listener: the dial fails → dead evidence.
	err = l.WithSession(context.Background(), "m1", func(*Session) error { return nil })
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if len(evidence) != 1 || evidence[0].alive {
		t.Fatalf("evidence = %+v, want one dead observation", evidence)
	}
	dials := l.Metrics().Snapshot().Dials

	// Gate the device Down: the operation is shed without dialing and
	// produces no evidence.
	down["m1"] = true
	err = l.WithSession(context.Background(), "m1", func(*Session) error { return nil })
	if !errors.Is(err, ErrShed) || !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrShed+ErrUnreachable", err)
	}
	if len(evidence) != 1 {
		t.Fatalf("shed operation produced evidence: %+v", evidence)
	}
	if got := l.Metrics().Snapshot().Dials; got != dials {
		t.Errorf("shed operation dialed (dials %d → %d)", dials, got)
	}
	if got := l.Metrics().Snapshot().GateShed; got != 1 {
		t.Errorf("GateShed = %d, want 1", got)
	}
}
