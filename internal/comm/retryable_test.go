package comm

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

type timeoutErr struct{ timeout bool }

func (e timeoutErr) Error() string { return "net op failed" }
func (e timeoutErr) Timeout() bool { return e.timeout }

func TestRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"timeout", ErrTimeout, true},
		{"wrapped timeout", fmt.Errorf("capture: %w", ErrTimeout), true},
		{"unreachable", ErrUnreachable, true},
		{"backoff", fmt.Errorf("%w: %w", ErrUnreachable, ErrBackoff), true},
		{"unknown device", ErrUnknownDevice, false},
		{"net timeout interface", timeoutErr{timeout: true}, true},
		{"net non-timeout", timeoutErr{timeout: false}, false},
		{"context cancel", context.Canceled, false},
		{"plain error", errors.New("boom"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
