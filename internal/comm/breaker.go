package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen marks an operation shed by a device's open circuit
// breaker: the device accumulated too many transport failures inside the
// rolling window, so the layer fails fast instead of dialing. Like
// ErrBackoff it also matches ErrUnreachable, preserving network data
// independence — a breaker-shed device simply contributes no tuple.
var ErrBreakerOpen = errors.New("comm: circuit breaker open")

// ErrShed marks an operation shed by the layer's liveness gate: the
// failure detector holds the device Down, so the layer refuses the
// operation without dialing. Also matches ErrUnreachable.
var ErrShed = errors.New("comm: device shed by failure detector")

// Breaker tuning defaults. The window/threshold pair is what catches a
// flapping device: the liveness detector's consecutive-failure counters
// reset on every success, so a device alternating success and failure
// never reaches Down — but its failures accumulate in the breaker's
// rolling window and trip the breaker, shedding load until the cooldown.
const (
	// DefaultBreakerThreshold is the failure count inside the window that
	// opens the breaker.
	DefaultBreakerThreshold = 5
	// DefaultBreakerWindow is the rolling window failures are counted in.
	DefaultBreakerWindow = 30 * time.Second
	// DefaultBreakerCooldown is how long an open breaker sheds before
	// allowing a half-open trial.
	DefaultBreakerCooldown = 10 * time.Second
)

// BreakerConfig tunes the per-device circuit breaker.
type BreakerConfig struct {
	// Threshold is the failure count within Window that opens the breaker.
	// 0 selects DefaultBreakerThreshold; negative disables the breaker.
	Threshold int
	// Window is the rolling failure-counting window (0 selects
	// DefaultBreakerWindow).
	Window time.Duration
	// Cooldown is the open period before a half-open trial (0 selects
	// DefaultBreakerCooldown).
	Cooldown time.Duration
}

func (c BreakerConfig) resolve() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = DefaultBreakerThreshold
	}
	if c.Window <= 0 {
		c.Window = DefaultBreakerWindow
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultBreakerCooldown
	}
	return c
}

// breaker is the layer's per-device circuit breaker. States per device:
// closed (normal), open (shedding until cooldown passes), half-open (one
// in-flight trial decides). Time is measured on the layer's clock.
type breaker struct {
	layer *Layer

	mu   sync.Mutex
	cfg  BreakerConfig
	devs map[string]*breakerState
}

type breakerState struct {
	fails     []time.Time // rolling failure timestamps, pruned to Window
	open      bool
	openUntil time.Time
	trial     bool // half-open: one trial in flight
}

func newBreaker(l *Layer, cfg BreakerConfig) *breaker {
	return &breaker{layer: l, cfg: cfg.resolve(), devs: make(map[string]*breakerState)}
}

// allow decides whether an operation on the device may proceed. Open
// breakers shed until the cooldown passes, then admit exactly one
// half-open trial whose outcome (record) closes or re-opens the breaker.
func (b *breaker) allow(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cfg.Threshold < 0 {
		return nil
	}
	st := b.devs[id]
	if st == nil || !st.open {
		return nil
	}
	now := b.layer.clk.Now()
	if now.Before(st.openUntil) {
		b.layer.metrics.BreakerShed.Add(1)
		return fmt.Errorf("%w: %w: %s sheds load for another %v",
			ErrUnreachable, ErrBreakerOpen, id, st.openUntil.Sub(now).Round(time.Millisecond))
	}
	if st.trial {
		b.layer.metrics.BreakerShed.Add(1)
		return fmt.Errorf("%w: %w: %s half-open trial already in flight", ErrUnreachable, ErrBreakerOpen, id)
	}
	st.trial = true
	return nil
}

// record feeds one operation result. Success closes the breaker and
// clears the failure history; a transport failure is appended to the
// rolling window and opens the breaker at the threshold (or immediately
// when a half-open trial fails).
func (b *breaker) record(id string, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cfg.Threshold < 0 {
		return
	}
	st := b.devs[id]
	if ok {
		if st != nil {
			delete(b.devs, id)
		}
		return
	}
	if st == nil {
		st = &breakerState{}
		b.devs[id] = st
	}
	now := b.layer.clk.Now()
	if st.open {
		// Failed half-open trial (or a straggler): re-open for a fresh
		// cooldown.
		st.trial = false
		st.openUntil = now.Add(b.cfg.Cooldown)
		b.layer.metrics.BreakerOpens.Add(1)
		return
	}
	st.fails = append(st.fails, now)
	cutoff := now.Add(-b.cfg.Window)
	kept := st.fails[:0]
	for _, at := range st.fails {
		if at.After(cutoff) {
			kept = append(kept, at)
		}
	}
	st.fails = kept
	if len(st.fails) >= b.cfg.Threshold {
		st.open = true
		st.trial = false
		st.openUntil = now.Add(b.cfg.Cooldown)
		st.fails = nil
		b.layer.metrics.BreakerOpens.Add(1)
	}
}

// abandon releases a half-open trial slot whose operation produced no
// evidence (caller cancellation, shed elsewhere) so the breaker does not
// stay wedged waiting for a verdict that never comes.
func (b *breaker) abandon(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if st := b.devs[id]; st != nil {
		st.trial = false
	}
}

// reset clears the device's breaker state entirely — the re-admission
// path when the failure detector declares the device recovered or it is
// re-registered.
func (b *breaker) reset(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.devs, id)
}

// configure swaps the breaker tuning and clears all state.
func (b *breaker) configure(cfg BreakerConfig) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cfg = cfg.resolve()
	b.devs = make(map[string]*breakerState)
}

// ConfigureBreaker replaces the layer's circuit-breaker tuning, clearing
// any accumulated per-device state.
func (l *Layer) ConfigureBreaker(cfg BreakerConfig) { l.breaker.configure(cfg) }
