package comm

// Columnar scan batches: the typed, batch-amortized representation of one
// virtual-table scan.
//
// The row-map representation (Tuple = map[string]any) pays one map
// allocation per device per epoch plus a hash probe per attribute access —
// the dominant cost of the scan→route→eval path once pooling removed the
// network cost. A Batch stores one typed slice per attribute instead:
// contiguous []float64 / []string columns that the predicate index and the
// compiled WHERE evaluators walk positionally. Tuple survives as a
// compatibility view (Batch.Row) so the wire format, action binding and
// result rows are unchanged.
//
// Lifecycle: batches are reference-counted and recycled through a
// sync.Pool. The producer (Layer.ScanBatch, or the scan fabric) creates a
// batch with one reference; every fan-out view retains it once and every
// consumer releases when done. The last Release resets the batch — column
// backing arrays keep their capacity — and returns it to the pool, so a
// steady-state epoch loop allocates no per-tuple memory at all.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"aorta/internal/profile"
)

// Kind is the storage class of one column.
type Kind uint8

// Column storage classes. KindAny is the boxed fallback for structured
// values (points, orientations) and mixed-type columns.
const (
	KindAny Kind = iota
	KindFloat
	KindString
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return "any"
	}
}

// KindOf maps a catalog attribute type to its column storage class:
// numeric attribute types get float64 columns (JSON numbers decode to
// float64 on the wire anyway), strings get string columns, structured
// types (point, orientation) stay boxed.
func KindOf(attrType string) Kind {
	switch attrType {
	case "float", "int":
		return KindFloat
	case "string":
		return KindString
	default:
		return KindAny
	}
}

// Schema is the ordered attribute layout of a batch: names plus storage
// kinds. A device type publishes its schema once (derived from its
// catalog); scans project it to the requested attribute subset. Schemas
// are immutable after construction and safe to share.
type Schema struct {
	names []string
	kinds []Kind
	index map[string]int
}

// NewSchema builds a schema from parallel name/kind slices. Kinds may be
// nil, in which case every column starts as KindAny and adopts the kind of
// its first appended value.
func NewSchema(names []string, kinds []Kind) *Schema {
	s := &Schema{
		names: append([]string(nil), names...),
		kinds: make([]Kind, len(names)),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		if kinds != nil {
			s.kinds[i] = kinds[i]
		}
		s.index[n] = i
	}
	return s
}

// SchemaFromCatalog derives the published schema of a device type from its
// catalog, projected to attrs (nil means every catalog attribute, in
// catalog order).
func SchemaFromCatalog(cat *profile.Catalog, attrs []string) (*Schema, error) {
	if attrs == nil {
		for _, a := range cat.Attributes {
			attrs = append(attrs, a.Name)
		}
	}
	kinds := make([]Kind, len(attrs))
	for i, name := range attrs {
		def, ok := cat.Attr(name)
		if !ok {
			return nil, fmt.Errorf("comm: device type %q has no attribute %q", cat.DeviceType, name)
		}
		kinds[i] = KindOf(def.Type)
	}
	return NewSchema(attrs, kinds), nil
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.names) }

// Name returns column i's attribute name.
func (s *Schema) Name(i int) string { return s.names[i] }

// Kind returns column i's declared storage class.
func (s *Schema) Kind(i int) Kind { return s.kinds[i] }

// Col returns the column index of an attribute.
func (s *Schema) Col(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Names returns the attribute names in column order. The slice is shared;
// callers must not mutate it.
func (s *Schema) Names() []string { return s.names }

// Col is one column of a batch: a typed slice when every value so far fits
// the column's kind, demoted to a boxed []any otherwise. Columns are
// written by the batch producer only; once a batch is published, columns
// are read-only and safe for concurrent readers.
type Col struct {
	kind Kind
	// adopted reports whether an initially-KindAny column has chosen a
	// typed representation from its first value.
	adopted bool
	f       []float64
	s       []string
	a       []any
}

// Kind returns the column's current storage class.
func (c *Col) Kind() Kind { return c.kind }

// Floats returns the column's contiguous float64 backing array, or nil if
// the column is not float-typed. Read-only.
func (c *Col) Floats() []float64 {
	if c.kind == KindFloat {
		return c.f
	}
	return nil
}

// Strings returns the column's contiguous string backing array, or nil if
// the column is not string-typed. Read-only.
func (c *Col) Strings() []string {
	if c.kind == KindString {
		return c.s
	}
	return nil
}

// Value returns row i's boxed value.
func (c *Col) Value(i int) any {
	switch c.kind {
	case KindFloat:
		return c.f[i]
	case KindString:
		return c.s[i]
	default:
		return c.a[i]
	}
}

// Float returns row i widened to float64, with ok=false for non-numeric or
// nil values — the same widening rule as predicate evaluation.
func (c *Col) Float(i int) (float64, bool) {
	switch c.kind {
	case KindFloat:
		return c.f[i], true
	case KindString:
		return 0, false
	default:
		return anyToFloat(c.a[i])
	}
}

// Str returns row i as a string, with ok=false for non-string values.
func (c *Col) Str(i int) (string, bool) {
	switch c.kind {
	case KindString:
		return c.s[i], true
	case KindFloat:
		return "", false
	default:
		s, ok := c.a[i].(string)
		return s, ok
	}
}

// reset prepares the column for reuse under a (possibly different)
// declared kind, keeping backing-array capacity.
func (c *Col) reset(kind Kind) {
	c.kind = kind
	c.adopted = kind != KindAny
	c.f = c.f[:0]
	c.s = c.s[:0]
	for i := range c.a {
		c.a[i] = nil // drop references so pooled batches don't pin values
	}
	c.a = c.a[:0]
}

// append adds one value, demoting the column to KindAny when the value
// does not fit the current typed representation. A column declared KindAny
// adopts the kind of its first non-nil value so schema-less batches (tests,
// synthetic workloads) still get typed columns.
func (c *Col) append(n int, v any) {
	if !c.adopted {
		c.adopted = true
		switch v.(type) {
		case float64:
			c.kind = KindFloat
		case string:
			c.kind = KindString
		default:
			c.kind = KindAny
		}
	}
	switch c.kind {
	case KindFloat:
		if f, ok := v.(float64); ok {
			c.f = append(c.f, f)
			return
		}
		// Non-float64 numerics widen; anything else demotes the column.
		if f, ok := anyToFloat(v); ok {
			c.f = append(c.f, f)
			return
		}
		c.demote(n)
	case KindString:
		if s, ok := v.(string); ok {
			c.s = append(c.s, s)
			return
		}
		c.demote(n)
	}
	c.a = append(c.a, v)
}

// demote rewrites the typed representation as boxed values.
func (c *Col) demote(n int) {
	a := c.a[:0]
	if cap(a) < n {
		a = make([]any, 0, n+1)
	}
	switch c.kind {
	case KindFloat:
		for _, f := range c.f {
			a = append(a, f)
		}
		c.f = c.f[:0]
	case KindString:
		for _, s := range c.s {
			a = append(a, s)
		}
		c.s = c.s[:0]
	}
	c.a = a
	c.kind = KindAny
}

// Batch is one scan's worth of tuples in columnar form: one Col per schema
// attribute, all the same length. Batches are reference-counted; see the
// package comment on lifecycle.
type Batch struct {
	schema *Schema
	cols   []Col
	n      int
	refs   atomic.Int32
}

// batchPool recycles batches whose last reference was released. Backing
// arrays keep their capacity across uses, so steady-state scan loops stop
// allocating per epoch.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// batchRecycled counts pool round trips, for tests and metrics.
var batchRecycled atomic.Int64

// BatchesRecycled reports how many batches have been returned to the pool
// since process start.
func BatchesRecycled() int64 { return batchRecycled.Load() }

// NewBatch returns an empty batch over the schema with one reference held
// by the caller.
func NewBatch(schema *Schema) *Batch {
	b := batchPool.Get().(*Batch)
	b.schema = schema
	if cap(b.cols) < schema.Len() {
		b.cols = make([]Col, schema.Len())
	} else {
		b.cols = b.cols[:schema.Len()]
	}
	for i := range b.cols {
		b.cols[i].reset(schema.Kind(i))
	}
	b.n = 0
	b.refs.Store(1)
	return b
}

// Schema returns the batch's column layout.
func (b *Batch) Schema() *Schema { return b.schema }

// Len returns the number of rows.
func (b *Batch) Len() int { return b.n }

// Col returns column i.
func (b *Batch) Col(i int) *Col { return &b.cols[i] }

// ColByName returns the column of an attribute, or nil when the batch does
// not carry it.
func (b *Batch) ColByName(name string) *Col {
	i, ok := b.schema.Col(name)
	if !ok {
		return nil
	}
	return &b.cols[i]
}

// Append adds one row; vals must be in schema column order.
func (b *Batch) Append(vals []any) {
	for i, v := range vals {
		b.cols[i].append(b.n, v)
	}
	b.n++
}

// AppendTuple adds one row from a row-map, taking nil for absent
// attributes — the compatibility ingest path.
func (b *Batch) AppendTuple(t Tuple) {
	for i, name := range b.schema.names {
		b.cols[i].append(b.n, t[name])
	}
	b.n++
}

// Row materializes row i as a Tuple — the compatibility view handed to
// code that still consumes row-maps. The returned map is freshly built and
// does not alias the batch.
func (b *Batch) Row(i int) Tuple {
	t := make(Tuple, len(b.cols))
	for c := range b.cols {
		t[b.schema.names[c]] = b.cols[c].Value(i)
	}
	return t
}

// Tuples materializes every row — the full compatibility view.
func (b *Batch) Tuples() []Tuple {
	out := make([]Tuple, b.n)
	for i := 0; i < b.n; i++ {
		out[i] = b.Row(i)
	}
	return out
}

// Retain adds one reference. Every fan-out view of a shared batch holds
// its own reference.
func (b *Batch) Retain() { b.refs.Add(1) }

// Release drops one reference; the last release resets the batch and
// returns it to the pool. Using a batch after releasing the last reference
// is a bug (the backing arrays may be rewritten by the next scan).
func (b *Batch) Release() {
	switch n := b.refs.Add(-1); {
	case n == 0:
		for i := range b.cols {
			b.cols[i].reset(KindAny)
		}
		b.schema = nil
		b.n = 0
		batchRecycled.Add(1)
		batchPool.Put(b)
	case n < 0:
		panic("comm: Batch released more times than retained")
	}
}

// BatchFromTuples builds a batch from row-maps — the ingest path for
// synthetic scans in tests and experiments. attrs fixes the column order;
// nil derives it from the union of tuple keys, sorted. Columns adopt the
// kind of their first value, so numeric/string columns come out typed.
func BatchFromTuples(attrs []string, tuples []Tuple) *Batch {
	if attrs == nil {
		set := make(map[string]bool)
		for _, t := range tuples {
			for k := range t {
				set[k] = true
			}
		}
		for k := range set {
			attrs = append(attrs, k)
		}
		sort.Strings(attrs)
	}
	b := NewBatch(NewSchema(attrs, nil))
	for _, t := range tuples {
		b.AppendTuple(t)
	}
	return b
}

// anyToFloat widens any numeric value to float64 — the same rule as
// predicate and expression evaluation.
func anyToFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	default:
		return 0, false
	}
}
