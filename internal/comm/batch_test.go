package comm

import (
	"reflect"
	"testing"

	"aorta/internal/profile"
)

func TestBatchTypedColumnsAndRowView(t *testing.T) {
	sch := NewSchema([]string{"id", "accel_x", "depth"}, []Kind{KindString, KindFloat, KindFloat})
	b := NewBatch(sch)
	defer b.Release()

	b.Append([]any{"mote-0", 100.5, 3})
	b.Append([]any{"mote-1", 200.5, 4})

	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if got := b.ColByName("accel_x").Floats(); !reflect.DeepEqual(got, []float64{100.5, 200.5}) {
		t.Fatalf("accel_x floats = %v", got)
	}
	// int static values widen into float columns.
	if got := b.ColByName("depth").Floats(); !reflect.DeepEqual(got, []float64{3, 4}) {
		t.Fatalf("depth floats = %v", got)
	}
	if got := b.ColByName("id").Strings(); !reflect.DeepEqual(got, []string{"mote-0", "mote-1"}) {
		t.Fatalf("id strings = %v", got)
	}

	row := b.Row(1)
	if row["id"] != "mote-1" || row["accel_x"] != 200.5 {
		t.Fatalf("Row(1) = %v", row)
	}
}

func TestBatchColumnDemotion(t *testing.T) {
	sch := NewSchema([]string{"v"}, []Kind{KindFloat})
	b := NewBatch(sch)
	defer b.Release()

	b.Append([]any{1.5})
	b.Append([]any{nil}) // unreadable value demotes the column
	b.Append([]any{2.5})

	c := b.ColByName("v")
	if c.Kind() != KindAny {
		t.Fatalf("kind = %v, want any", c.Kind())
	}
	if c.Floats() != nil {
		t.Fatal("demoted column still exposes Floats()")
	}
	// Values survive the demotion, including the pre-demotion prefix.
	want := []any{1.5, nil, 2.5}
	for i, w := range want {
		if got := c.Value(i); got != w {
			t.Fatalf("Value(%d) = %v, want %v", i, got, w)
		}
	}
	if f, ok := c.Float(0); !ok || f != 1.5 {
		t.Fatalf("Float(0) = %v, %v", f, ok)
	}
	if _, ok := c.Float(1); ok {
		t.Fatal("Float(1) ok for nil value")
	}
}

func TestBatchKindAdoption(t *testing.T) {
	// Schema-less batches adopt the kind of the first value per column.
	b := BatchFromTuples(nil, []Tuple{
		{"id": "a", "x": 1.0},
		{"id": "b", "x": 2.0},
	})
	defer b.Release()

	if k := b.ColByName("x").Kind(); k != KindFloat {
		t.Fatalf("x kind = %v, want float", k)
	}
	if k := b.ColByName("id").Kind(); k != KindString {
		t.Fatalf("id kind = %v, want string", k)
	}
	// Column order is the sorted key union.
	if got := b.Schema().Names(); !reflect.DeepEqual(got, []string{"id", "x"}) {
		t.Fatalf("names = %v", got)
	}
}

func TestBatchRefcountRecycle(t *testing.T) {
	before := BatchesRecycled()
	sch := NewSchema([]string{"id"}, []Kind{KindString})
	b := NewBatch(sch)
	b.Append([]any{"d-0"})

	b.Retain() // a second consumer
	b.Release()
	if BatchesRecycled() != before {
		t.Fatal("batch recycled while a reference was live")
	}
	if got := b.Row(0)["id"]; got != "d-0" {
		t.Fatalf("row after partial release = %v", got)
	}
	b.Release()
	if BatchesRecycled() != before+1 {
		t.Fatalf("recycled = %d, want %d", BatchesRecycled(), before+1)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	b.Release()
}

func TestSchemaFromCatalogKinds(t *testing.T) {
	reg, err := profile.DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	cat, ok := reg.Catalog("sensor")
	if !ok {
		t.Fatal("no sensor catalog")
	}
	sch, err := SchemaFromCatalog(cat, []string{"id", "accel_x", "depth", "loc"})
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KindString, KindFloat, KindFloat, KindAny}
	for i, k := range want {
		if sch.Kind(i) != k {
			t.Fatalf("kind[%d] = %v, want %v", i, sch.Kind(i), k)
		}
	}
	if _, err := SchemaFromCatalog(cat, []string{"bogus"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}
