package comm

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"aorta/internal/device"
	"aorta/internal/device/camera"
	"aorta/internal/device/mote"
	"aorta/internal/device/phone"
	"aorta/internal/geo"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
)

// testFarm wires two cameras, two motes and a phone into an in-memory
// network behind a communication layer.
type testFarm struct {
	layer   *Layer
	network *netsim.Network
	clk     *vclock.Scaled
	cams    []*camera.Camera
	motes   []*mote.Mote
	phones  []*phone.Phone
}

func newFarm(t *testing.T) *testFarm {
	t.Helper()
	clk := vclock.NewScaled(100)
	network := netsim.NewNetwork(clk, 1)
	reg, err := profile.DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	layer := New(network, clk, reg)
	f := &testFarm{layer: layer, network: network, clk: clk}

	serve := func(id string, m device.Model, static map[string]any) {
		l, err := network.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		srv := device.Serve(l, m)
		t.Cleanup(func() { srv.Close() })
		if err := layer.Register(DeviceInfo{ID: id, Type: m.Type(), Addr: id, Static: static}); err != nil {
			t.Fatal(err)
		}
	}

	for i, pos := range []geo.Point{{X: 0, Y: 0, Z: 3}, {X: 8, Y: 0, Z: 3}} {
		cam := camera.New(camID(i), geo.DefaultMount(pos, 0), clk)
		f.cams = append(f.cams, cam)
		serve(cam.ID(), cam, map[string]any{"ip": cam.ID(), "loc": pos})
	}
	for i, pos := range []geo.Point{{X: 2, Y: 1}, {X: 5, Y: 2}} {
		m := mote.New(moteID(i), pos, clk, mote.Config{Depth: i + 1, Seed: int64(i)})
		f.motes = append(f.motes, m)
		serve(m.ID(), m, map[string]any{"loc": pos, "depth": i + 1})
	}
	p := phone.New("phone-1", "+852555001", "manager", clk)
	f.phones = append(f.phones, p)
	serve(p.ID(), p, map[string]any{"number": p.Number(), "owner": "manager"})
	return f
}

func camID(i int) string  { return []string{"camera-1", "camera-2"}[i] }
func moteID(i int) string { return []string{"mote-1", "mote-2"}[i] }

func TestRegisterValidation(t *testing.T) {
	f := newFarm(t)
	if err := f.layer.Register(DeviceInfo{ID: "", Type: "camera", Addr: "x"}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := f.layer.Register(DeviceInfo{ID: "x", Type: "spaceship", Addr: "x"}); err == nil {
		t.Error("unknown device type accepted")
	}
	if err := f.layer.Register(DeviceInfo{ID: "camera-1", Type: "camera", Addr: "y"}); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestDeviceLookups(t *testing.T) {
	f := newFarm(t)
	d, ok := f.layer.Device("camera-1")
	if !ok || d.Type != "camera" {
		t.Fatalf("Device(camera-1) = %+v, %v", d, ok)
	}
	if _, ok := f.layer.Device("ghost"); ok {
		t.Error("found unregistered device")
	}
	cams := f.layer.DevicesOfType("camera")
	if len(cams) != 2 || cams[0].ID != "camera-1" || cams[1].ID != "camera-2" {
		t.Errorf("DevicesOfType(camera) = %v", cams)
	}
	if all := f.layer.Devices(); len(all) != 5 {
		t.Errorf("Devices() = %d entries, want 5", len(all))
	}
}

func TestDeviceInfoIsolation(t *testing.T) {
	f := newFarm(t)
	d, _ := f.layer.Device("camera-1")
	d.Static["ip"] = "tampered"
	d2, _ := f.layer.Device("camera-1")
	if d2.Static["ip"] == "tampered" {
		t.Error("registry returned a live Static map")
	}
}

// TestDeviceInfoCloneDeepStatic: clone must copy nested containers inside
// Static, not just the top-level map — a caller mutating a nested map or
// slice of one snapshot must not corrupt the registry or other snapshots.
func TestDeviceInfoCloneDeepStatic(t *testing.T) {
	f := newFarm(t)
	err := f.layer.Register(DeviceInfo{
		ID: "mote-9", Type: "sensor", Addr: "mote-9",
		Static: map[string]any{
			"calibration": map[string]any{"offset": 1.5, "axes": []any{"x", "y"}},
			"channels":    []any{1, 2, 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := f.layer.Device("mote-9")
	d.Static["calibration"].(map[string]any)["offset"] = 99.0
	d.Static["calibration"].(map[string]any)["axes"].([]any)[0] = "tampered"
	d.Static["channels"].([]any)[0] = -1

	d2, _ := f.layer.Device("mote-9")
	cal := d2.Static["calibration"].(map[string]any)
	if cal["offset"] != 1.5 {
		t.Errorf("nested map aliased: offset = %v", cal["offset"])
	}
	if axes := cal["axes"].([]any); axes[0] != "x" {
		t.Errorf("slice inside nested map aliased: axes[0] = %v", axes[0])
	}
	if ch := d2.Static["channels"].([]any); ch[0] != 1 {
		t.Errorf("top-level slice aliased: channels[0] = %v", ch[0])
	}
}

func TestProbeCamera(t *testing.T) {
	f := newFarm(t)
	res, err := f.layer.Probe(context.Background(), "camera-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceType != "camera" || res.DeviceID != "camera-1" || res.Busy {
		t.Errorf("probe = %+v", res)
	}
	var st camera.Status
	if err := json.Unmarshal(res.Status, &st); err != nil {
		t.Fatal(err)
	}
	if st.Head.Zoom != 1 {
		t.Errorf("status head = %+v", st.Head)
	}
	if f.layer.Metrics().Probes.Load() != 1 {
		t.Errorf("probe count = %d", f.layer.Metrics().Probes.Load())
	}
}

func TestProbeUnknownDevice(t *testing.T) {
	f := newFarm(t)
	if _, err := f.layer.Probe(context.Background(), "nope"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("err = %v, want ErrUnknownDevice", err)
	}
}

func TestProbeUnreachableDevice(t *testing.T) {
	f := newFarm(t)
	f.network.SetLink("mote-1", netsim.LinkConfig{Down: true})
	if _, err := f.layer.Probe(context.Background(), "mote-1"); err == nil {
		t.Fatal("probe of downed device succeeded")
	}
	if f.layer.Metrics().ProbeFailures.Load() == 0 {
		t.Error("probe failure not counted")
	}
}

// TestProbeTimeoutOnBlackhole is the paper's §4 scenario: an unresponsive
// device must be broken out of by the system-provided TIMEOUT.
func TestProbeTimeoutOnBlackhole(t *testing.T) {
	f := newFarm(t)
	f.layer.SetTimeout("sensor", 3*time.Second) // 3 virtual s = 3ms wall
	f.network.SetLink("mote-2", netsim.LinkConfig{Blackhole: true})
	start := time.Now()
	_, err := f.layer.Probe(context.Background(), "mote-2")
	if err == nil {
		t.Fatal("probe of blackholed device succeeded")
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("probe took %v wall time; TIMEOUT did not break it", wall)
	}
}

func TestReadAttrSensoryAndStatic(t *testing.T) {
	f := newFarm(t)
	f.motes[0].Stimulate("x", 900, time.Hour)
	v, err := f.layer.ReadAttr(context.Background(), "mote-1", "accel_x")
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) < 500 {
		t.Errorf("accel_x = %v, want > 500", v)
	}
	// depth is non-sensory but the device answers it too.
	d, err := f.layer.ReadAttr(context.Background(), "mote-1", "depth")
	if err != nil {
		t.Fatal(err)
	}
	if d.(float64) != 1 {
		t.Errorf("depth = %v", d)
	}
}

func TestExecActionOnPhone(t *testing.T) {
	f := newFarm(t)
	res, err := f.layer.Exec(context.Background(), "phone-1", "send_sms", &phone.SMSArgs{Text: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(res, &m); err != nil {
		t.Fatal(err)
	}
	if m["delivered"] != 1.0 {
		t.Errorf("result = %v", m)
	}
	if got := f.phones[0].Inbox(); len(got) != 1 || got[0].Text != "hi" {
		t.Errorf("inbox = %+v", got)
	}
}

func TestExecErrorSurfaced(t *testing.T) {
	f := newFarm(t)
	f.phones[0].SetCoverage(false)
	if _, err := f.layer.Exec(context.Background(), "phone-1", "send_sms", nil); err == nil {
		t.Fatal("exec on out-of-coverage phone succeeded")
	}
	if f.layer.Metrics().ExecFailures.Load() == 0 {
		t.Error("exec failure not counted")
	}
}

func TestSessionReuse(t *testing.T) {
	f := newFarm(t)
	s, err := f.layer.Connect(context.Background(), "camera-1")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Device().ID != "camera-1" {
		t.Errorf("session device = %v", s.Device().ID)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Probe(context.Background()); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	if _, err := s.Read(context.Background(), "pan"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(context.Background(), "store", nil); err != nil {
		t.Fatal(err)
	}
}

func TestScanMoteTable(t *testing.T) {
	f := newFarm(t)
	f.motes[1].Stimulate("x", 700, time.Hour)
	tuples, report, err := f.layer.Scan(context.Background(), "sensor", []string{"loc", "accel_x"})
	if err != nil {
		t.Fatal(err)
	}
	if report.Scanned != 2 || report.Skipped != 0 {
		t.Fatalf("report = %+v", report)
	}
	if len(tuples) != 2 {
		t.Fatalf("got %d tuples", len(tuples))
	}
	if tuples[0]["id"] != "mote-1" || tuples[1]["id"] != "mote-2" {
		t.Errorf("tuple order: %v, %v", tuples[0]["id"], tuples[1]["id"])
	}
	if tuples[1]["accel_x"].(float64) < 500 {
		t.Errorf("mote-2 accel_x = %v", tuples[1]["accel_x"])
	}
	if tuples[0]["loc"] == nil {
		t.Error("static loc missing from tuple")
	}
}

func TestScanSkipsUnreachableDevices(t *testing.T) {
	f := newFarm(t)
	f.network.SetLink("mote-1", netsim.LinkConfig{Down: true})
	tuples, report, err := f.layer.Scan(context.Background(), "sensor", []string{"accel_x"})
	if err != nil {
		t.Fatal(err)
	}
	if report.Scanned != 1 || report.Skipped != 1 {
		t.Fatalf("report = %+v", report)
	}
	if len(tuples) != 1 || tuples[0]["id"] != "mote-2" {
		t.Fatalf("tuples = %v", tuples)
	}
}

func TestScanStaticOnlyNeedsNoConnection(t *testing.T) {
	f := newFarm(t)
	// All devices down: a static-only scan still answers from the registry.
	for _, id := range []string{"camera-1", "camera-2"} {
		f.network.SetLink(id, netsim.LinkConfig{Down: true})
	}
	tuples, report, err := f.layer.Scan(context.Background(), "camera", []string{"ip", "loc"})
	if err != nil {
		t.Fatal(err)
	}
	if report.Scanned != 2 || len(tuples) != 2 {
		t.Fatalf("static scan: %+v, %d tuples", report, len(tuples))
	}
}

func TestScanUnknownAttr(t *testing.T) {
	f := newFarm(t)
	if _, _, err := f.layer.Scan(context.Background(), "sensor", []string{"gps"}); err == nil {
		t.Error("scan with unknown attribute accepted")
	}
}

func TestScanUnknownType(t *testing.T) {
	f := newFarm(t)
	if _, _, err := f.layer.Scan(context.Background(), "drone", nil); err == nil {
		t.Error("scan of unknown device type accepted")
	}
}

func TestScanAllAttrsDefault(t *testing.T) {
	f := newFarm(t)
	tuples, _, err := f.layer.Scan(context.Background(), "phone", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("tuples = %v", tuples)
	}
	for _, attr := range []string{"number", "owner", "battery", "in_coverage", "inbox_count"} {
		if _, ok := tuples[0][attr]; !ok {
			t.Errorf("attribute %q missing from full scan", attr)
		}
	}
}

func TestRemoveDevice(t *testing.T) {
	f := newFarm(t)
	f.layer.Remove("mote-1")
	if _, ok := f.layer.Device("mote-1"); ok {
		t.Error("device still present after Remove")
	}
	tuples, _, err := f.layer.Scan(context.Background(), "sensor", []string{"accel_x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Errorf("scan after remove = %d tuples", len(tuples))
	}
}

func TestTimeoutDefaults(t *testing.T) {
	f := newFarm(t)
	if f.layer.Timeout("camera") != DefaultTimeout {
		t.Errorf("default timeout = %v", f.layer.Timeout("camera"))
	}
	f.layer.SetTimeout("camera", 5*time.Second)
	if f.layer.Timeout("camera") != 5*time.Second {
		t.Errorf("timeout after set = %v", f.layer.Timeout("camera"))
	}
}

func TestProbeRTTPositive(t *testing.T) {
	f := newFarm(t)
	f.network.SetLink("camera-1", netsim.LinkConfig{Latency: 50 * time.Millisecond})
	res, err := f.layer.Probe(context.Background(), "camera-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.RTT <= 0 {
		t.Errorf("RTT = %v, want > 0 with 50ms link latency", res.RTT)
	}
}
