package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"aorta/internal/device"
	"aorta/internal/device/camera"
	"aorta/internal/device/mote"
	"aorta/internal/geo"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
)

// poolFarm is a restartable device farm for pool tests: unlike newFarm it
// keeps server handles so tests can kill and revive individual devices,
// and it accepts any clock so backoff and TTL tests can run on a manual
// one.
type poolFarm struct {
	t       *testing.T
	layer   *Layer
	network *netsim.Network
	clk     vclock.Clock
	models  map[string]device.Model
	servers map[string]*device.Server
}

func newPoolFarm(t *testing.T, clk vclock.Clock) *poolFarm {
	t.Helper()
	network := netsim.NewNetwork(clk, 1)
	reg, err := profile.DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	f := &poolFarm{
		t:       t,
		layer:   New(network, clk, reg),
		network: network,
		clk:     clk,
		models:  make(map[string]device.Model),
		servers: make(map[string]*device.Server),
	}
	for i, pos := range []geo.Point{{X: 2, Y: 1}, {X: 5, Y: 2}} {
		m := mote.New(fmt.Sprintf("mote-%d", i+1), pos, clk, mote.Config{Depth: i + 1, Seed: int64(i)})
		f.add(m, map[string]any{"loc": pos, "depth": i + 1})
	}
	cam := camera.New("camera-1", geo.DefaultMount(geo.Point{Z: 3}, 0), clk)
	f.add(cam, map[string]any{"ip": "camera-1", "loc": geo.Point{Z: 3}})
	t.Cleanup(func() {
		_ = f.layer.Close()
		for _, srv := range f.servers {
			srv.Close()
		}
	})
	return f
}

func (f *poolFarm) add(m device.Model, static map[string]any) {
	f.t.Helper()
	f.models[m.ID()] = m
	if err := f.layer.Register(DeviceInfo{ID: m.ID(), Type: m.Type(), Addr: m.ID(), Static: static}); err != nil {
		f.t.Fatal(err)
	}
	f.start(m.ID())
}

// start (re)starts the device server for id.
func (f *poolFarm) start(id string) {
	f.t.Helper()
	ln, err := f.network.Listen(id)
	if err != nil {
		f.t.Fatal(err)
	}
	f.servers[id] = device.Serve(ln, f.models[id])
}

// kill stops id's server, closing its listener and every live connection —
// the device dies mid-session.
func (f *poolFarm) kill(id string) {
	f.t.Helper()
	f.servers[id].Close()
}

func (f *poolFarm) metrics() *Metrics { return f.layer.Metrics() }

// TestPoolReuseAcrossProbes: consecutive one-shot operations on the same
// device must share one dial (the headline claim of the pooled transport).
func TestPoolReuseAcrossProbes(t *testing.T) {
	f := newPoolFarm(t, vclock.NewScaled(100))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := f.layer.Probe(ctx, "mote-1"); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.metrics().Dials.Load(); got != 1 {
		t.Errorf("Dials = %d after 3 probes, want 1", got)
	}
	if hits := f.metrics().PoolHits.Load(); hits != 2 {
		t.Errorf("PoolHits = %d, want 2", hits)
	}
	if open := f.metrics().OpenSessions.Load(); open != 1 {
		t.Errorf("OpenSessions = %d, want 1", open)
	}
}

// TestPoolSharedAcrossOperationKinds: probe, attribute read and action
// execution all ride the same pooled session.
func TestPoolSharedAcrossOperationKinds(t *testing.T) {
	f := newPoolFarm(t, vclock.NewScaled(100))
	ctx := context.Background()
	if _, err := f.layer.Probe(ctx, "mote-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.layer.ReadAttr(ctx, "mote-1", "battery"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.layer.Exec(ctx, "mote-1", "beep", nil); err != nil {
		t.Fatal(err)
	}
	if got := f.metrics().Dials.Load(); got != 1 {
		t.Errorf("Dials = %d across probe+read+exec, want 1", got)
	}
}

// TestConcurrentScansShareSessions: many concurrent table scans must not
// race dials — each device is dialed exactly once and every scanner
// shares the live session. Run with -race.
func TestConcurrentScansShareSessions(t *testing.T) {
	f := newPoolFarm(t, vclock.NewScaled(100))
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tuples, report, err := f.layer.Scan(ctx, "sensor", nil)
			if err != nil {
				t.Error(err)
				return
			}
			if len(tuples) != 2 || report.Skipped != 0 {
				t.Errorf("scan: %d tuples, %d skipped", len(tuples), report.Skipped)
			}
		}()
	}
	wg.Wait()
	if got := f.metrics().Dials.Load(); got != 2 {
		t.Errorf("Dials = %d for 8 concurrent scans of 2 motes, want 2", got)
	}
}

// TestBrokenSessionTransparentRedial: a device killed mid-operation breaks
// the pooled session; the pool must evict it and transparently re-dial
// once, so the operation still succeeds against the revived device.
func TestBrokenSessionTransparentRedial(t *testing.T) {
	f := newPoolFarm(t, vclock.NewScaled(100))
	ctx := context.Background()
	if _, err := f.layer.Probe(ctx, "mote-1"); err != nil {
		t.Fatal(err)
	}
	calls := 0
	err := f.layer.WithSession(ctx, "mote-1", func(s *Session) error {
		calls++
		if calls == 1 {
			// The device dies under us and comes straight back: the
			// cached session is broken but the device is dialable again.
			f.kill("mote-1")
			f.start("mote-1")
			_, err := s.Probe(ctx)
			return err
		}
		_, err := s.Probe(ctx)
		return err
	})
	if err != nil {
		t.Fatalf("WithSession after mid-session kill: %v", err)
	}
	if calls != 2 {
		t.Errorf("fn ran %d times, want 2 (original + one transparent retry)", calls)
	}
	if got := f.metrics().Dials.Load(); got != 2 {
		t.Errorf("Dials = %d, want 2 (initial + one redial)", got)
	}
	if broken := f.metrics().PoolBroken.Load(); broken != 1 {
		t.Errorf("PoolBroken = %d, want 1", broken)
	}
}

// TestBrokenSessionEvictedOnNextAcquire: a session whose device died while
// idle fails the liveness check on the next acquire and is replaced by a
// fresh dial — callers never see the dead connection.
func TestBrokenSessionEvictedOnNextAcquire(t *testing.T) {
	f := newPoolFarm(t, vclock.NewScaled(100))
	ctx := context.Background()
	if _, err := f.layer.Probe(ctx, "mote-1"); err != nil {
		t.Fatal(err)
	}
	f.kill("mote-1")
	f.start("mote-1")
	// Let the dead session's reader goroutine observe the closed pipe.
	time.Sleep(10 * time.Millisecond)
	if _, err := f.layer.Probe(ctx, "mote-1"); err != nil {
		t.Fatalf("probe after device restart: %v", err)
	}
	if got := f.metrics().Dials.Load(); got != 2 {
		t.Errorf("Dials = %d, want 2", got)
	}
	if broken := f.metrics().PoolBroken.Load(); broken != 1 {
		t.Errorf("PoolBroken = %d, want 1", broken)
	}
}

// TestDialBackoffSuppressesAndRecovers: a dead device enters backoff after
// a failed dial; until the window expires the pool refuses to dial it
// (scans skip it without network traffic, preserving network data
// independence), and once it expires the device is dialed again.
func TestDialBackoffSuppressesAndRecovers(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	f := newPoolFarm(t, clk)
	f.layer.ConfigurePool(PoolConfig{BackoffBase: time.Second})
	ctx := context.Background()

	f.network.SetLink("mote-1", netsim.LinkConfig{Down: true})
	_, err := f.layer.Probe(ctx, "mote-1")
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("probe of down device: %v, want ErrUnreachable", err)
	}
	if d, df := f.metrics().Dials.Load(), f.metrics().DialFailures.Load(); d != 1 || df != 1 {
		t.Fatalf("Dials = %d, DialFailures = %d, want 1, 1", d, df)
	}

	// Inside the backoff window: no dial is attempted at all.
	_, err = f.layer.Probe(ctx, "mote-1")
	if !errors.Is(err, ErrBackoff) || !errors.Is(err, ErrUnreachable) {
		t.Fatalf("probe in backoff: %v, want ErrBackoff and ErrUnreachable", err)
	}
	if got := f.metrics().Dials.Load(); got != 1 {
		t.Errorf("Dials = %d during backoff, want still 1", got)
	}
	if sup := f.metrics().SuppressedDials.Load(); sup != 1 {
		t.Errorf("SuppressedDials = %d, want 1", sup)
	}

	// A table scan skips the backed-off device without dialing; the other
	// mote still produces its tuple.
	tuples, report, err := f.layer.Scan(ctx, "sensor", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || report.Skipped != 1 || report.InBackoff != 1 {
		t.Errorf("scan during backoff: %d tuples, report %+v; want 1 tuple, 1 skipped, 1 in backoff", len(tuples), report)
	}

	// The device recovers and the window expires: dialing resumes.
	f.network.SetLink("mote-1", netsim.LinkConfig{})
	clk.Advance(1100 * time.Millisecond)
	if _, err := f.layer.Probe(ctx, "mote-1"); err != nil {
		t.Fatalf("probe after backoff expiry: %v", err)
	}
}

// TestDialBackoffExponentialGrowth: consecutive dial failures double the
// suppression window.
func TestDialBackoffExponentialGrowth(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	f := newPoolFarm(t, clk)
	f.layer.ConfigurePool(PoolConfig{BackoffBase: time.Second})
	ctx := context.Background()
	f.network.SetLink("mote-1", netsim.LinkConfig{Down: true})

	// First failure: 1s window.
	if _, err := f.layer.Probe(ctx, "mote-1"); !errors.Is(err, ErrUnreachable) {
		t.Fatal(err)
	}
	clk.Advance(1500 * time.Millisecond)
	// Window expired: a real dial happens and fails again — 2s window now.
	if _, err := f.layer.Probe(ctx, "mote-1"); errors.Is(err, ErrBackoff) {
		t.Fatal("second probe should have dialed, not been suppressed")
	}
	if got := f.metrics().DialFailures.Load(); got != 2 {
		t.Fatalf("DialFailures = %d, want 2", got)
	}
	// 1.5s into the doubled window: still suppressed.
	clk.Advance(1500 * time.Millisecond)
	if _, err := f.layer.Probe(ctx, "mote-1"); !errors.Is(err, ErrBackoff) {
		t.Fatalf("probe 1.5s into 2s window: %v, want ErrBackoff", err)
	}
	// Past it: dialing resumes.
	clk.Advance(time.Second)
	if _, err := f.layer.Probe(ctx, "mote-1"); errors.Is(err, ErrBackoff) {
		t.Fatal("probe after doubled window should have dialed")
	}
	if got := f.metrics().DialFailures.Load(); got != 3 {
		t.Errorf("DialFailures = %d, want 3", got)
	}
}

// TestIdleSessionsReaped: sessions idle past the TTL are reclaimed on the
// layer's clock, and the next operation simply re-dials.
func TestIdleSessionsReaped(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	f := newPoolFarm(t, clk)
	f.layer.ConfigurePool(PoolConfig{IdleTTL: 30 * time.Second})
	ctx := context.Background()
	if _, err := f.layer.Probe(ctx, "mote-1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(29 * time.Second)
	if n := f.layer.ReapIdleSessions(); n != 0 {
		t.Fatalf("reaped %d sessions before TTL, want 0", n)
	}
	clk.Advance(2 * time.Second)
	if n := f.layer.ReapIdleSessions(); n != 1 {
		t.Fatalf("reaped %d sessions after TTL, want 1", n)
	}
	if exp, open := f.metrics().PoolExpired.Load(), f.metrics().OpenSessions.Load(); exp != 1 || open != 0 {
		t.Errorf("PoolExpired = %d, OpenSessions = %d, want 1, 0", exp, open)
	}
	if _, err := f.layer.Probe(ctx, "mote-1"); err != nil {
		t.Fatalf("probe after reap: %v", err)
	}
	if got := f.metrics().Dials.Load(); got != 2 {
		t.Errorf("Dials = %d, want 2 (reap forced a re-dial)", got)
	}
}

// TestPoolCapacityLRUEviction: the session cap evicts the
// least-recently-used idle session, never a busy one.
func TestPoolCapacityLRUEviction(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	f := newPoolFarm(t, clk)
	f.layer.ConfigurePool(PoolConfig{MaxSessions: 2})
	ctx := context.Background()
	for _, id := range []string{"mote-1", "mote-2", "camera-1"} {
		if _, err := f.layer.Probe(ctx, id); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Millisecond)
	}
	if open := f.metrics().OpenSessions.Load(); open != 2 {
		t.Errorf("OpenSessions = %d with cap 2, want 2", open)
	}
	if ev := f.metrics().PoolEvictions.Load(); ev != 1 {
		t.Errorf("PoolEvictions = %d, want 1", ev)
	}
	// mote-1 was the LRU victim: probing it again must re-dial, while
	// mote-2 (kept, then becomes LRU and is evicted for mote-1's slot)...
	dialsBefore := f.metrics().Dials.Load()
	if _, err := f.layer.Probe(ctx, "mote-1"); err != nil {
		t.Fatal(err)
	}
	if got := f.metrics().Dials.Load(); got != dialsBefore+1 {
		t.Errorf("Dials = %d after re-probing evicted mote-1, want %d", got, dialsBefore+1)
	}
	// camera-1 survived both evictions (most recently used): no new dial.
	dialsBefore = f.metrics().Dials.Load()
	if _, err := f.layer.Probe(ctx, "camera-1"); err != nil {
		t.Fatal(err)
	}
	if got := f.metrics().Dials.Load(); got != dialsBefore {
		t.Errorf("probing camera-1 dialed again (Dials %d -> %d), want cache hit", dialsBefore, got)
	}
}

// TestLayerCloseDrainsPool: Close reclaims every pooled session but leaves
// the layer usable — the next operation re-dials.
func TestLayerCloseDrainsPool(t *testing.T) {
	f := newPoolFarm(t, vclock.NewScaled(100))
	ctx := context.Background()
	for _, id := range []string{"mote-1", "mote-2"} {
		if _, err := f.layer.Probe(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.layer.Close(); err != nil {
		t.Fatal(err)
	}
	if drained, open := f.metrics().PoolDrained.Load(), f.metrics().OpenSessions.Load(); drained != 2 || open != 0 {
		t.Errorf("PoolDrained = %d, OpenSessions = %d, want 2, 0", drained, open)
	}
	if _, err := f.layer.Probe(ctx, "mote-1"); err != nil {
		t.Fatalf("probe after Close: %v", err)
	}
	if got := f.metrics().Dials.Load(); got != 3 {
		t.Errorf("Dials = %d, want 3", got)
	}
}

// TestPoolDisabledOneShot: MaxSessions < 0 restores the pre-pool one-shot
// behaviour — every operation dials and closes its own connection.
func TestPoolDisabledOneShot(t *testing.T) {
	f := newPoolFarm(t, vclock.NewScaled(100))
	f.layer.ConfigurePool(PoolConfig{MaxSessions: -1})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := f.layer.Probe(ctx, "mote-1"); err != nil {
			t.Fatal(err)
		}
	}
	m := f.metrics()
	if got := m.Dials.Load(); got != 2 {
		t.Errorf("Dials = %d with pooling disabled, want 2", got)
	}
	if hits, open := m.PoolHits.Load(), m.OpenSessions.Load(); hits != 0 || open != 0 {
		t.Errorf("PoolHits = %d, OpenSessions = %d with pooling disabled, want 0, 0", hits, open)
	}
}

// TestBackoffClearedByConfigure: reconfiguring the pool drains the
// dial-failure cache along with the sessions.
func TestBackoffClearedByConfigure(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	f := newPoolFarm(t, clk)
	f.layer.ConfigurePool(PoolConfig{BackoffBase: time.Hour})
	ctx := context.Background()
	f.network.SetLink("mote-1", netsim.LinkConfig{Down: true})
	if _, err := f.layer.Probe(ctx, "mote-1"); !errors.Is(err, ErrUnreachable) {
		t.Fatal(err)
	}
	if _, err := f.layer.Probe(ctx, "mote-1"); !errors.Is(err, ErrBackoff) {
		t.Fatalf("expected backoff, got %v", err)
	}
	f.network.SetLink("mote-1", netsim.LinkConfig{})
	f.layer.ConfigurePool(PoolConfig{BackoffBase: time.Hour})
	if _, err := f.layer.Probe(ctx, "mote-1"); err != nil {
		t.Fatalf("probe after reconfigure: %v", err)
	}
}
