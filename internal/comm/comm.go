// Package comm implements Aorta's uniform data communication layer
// (paper §3).
//
// The layer manages the registry of networked heterogeneous devices and
// gives the query engine three things:
//
//   - the basic communication methods — connect(), close(), send() and
//     receive() — wrapped into typed Probe/Read/Exec calls that speak the
//     wire protocol to any device type (paper §3.3);
//   - virtual relational tables: each device type is abstracted into a
//     table whose tuples are generated on the fly by scan operators;
//     sensory attributes are acquired from the live device, non-sensory
//     attributes come from the registry (paper §3.2);
//   - per-device-type TIMEOUT handling so probes on unresponsive devices
//     break instead of hanging (paper §4).
//
// Unreachable devices never fail a scan — they simply contribute no tuple.
// That is the "network data independence" the paper takes from
// Hellerstein: applications see a dynamic logical view, not transmission
// loss and device failure.
package comm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
	"aorta/internal/wire"
)

// DefaultTimeout is the probe/request timeout used for device types with
// no explicit setting.
const DefaultTimeout = 2 * time.Second

// DeviceInfo describes one registered device.
type DeviceInfo struct {
	ID   string
	Type string
	// Addr is the network address the device's server listens on.
	Addr string
	// Static holds the device's non-sensory attribute values (e.g. loc,
	// number, depth).
	Static map[string]any
}

// clone returns a deep-enough copy (the Static map is copied).
func (d *DeviceInfo) clone() *DeviceInfo {
	out := *d
	out.Static = make(map[string]any, len(d.Static))
	for k, v := range d.Static {
		out.Static[k] = v
	}
	return &out
}

// ProbeResult is what a successful probe returns: the device's identity,
// busy flag and current physical status.
type ProbeResult struct {
	DeviceID   string
	DeviceType string
	Busy       bool
	Status     json.RawMessage
	// RTT is the probe round-trip time on the layer's clock.
	RTT time.Duration
}

// Tuple is one row of a virtual device table: attribute name → value.
// Values are JSON-decoded (float64, string, bool, or raw structures).
type Tuple map[string]any

// Metrics counts the layer's interactions with the device network.
type Metrics struct {
	Probes        atomic.Int64
	ProbeFailures atomic.Int64
	Reads         atomic.Int64
	ReadFailures  atomic.Int64
	Execs         atomic.Int64
	ExecFailures  atomic.Int64
	Dials         atomic.Int64
	DialFailures  atomic.Int64
}

// ErrUnknownDevice is returned when an operation names an unregistered
// device.
var ErrUnknownDevice = errors.New("comm: unknown device")

// ErrTimeout is returned when a device did not answer within its type's
// TIMEOUT.
var ErrTimeout = errors.New("comm: device timed out")

// ErrUnreachable is returned when a device connection could not be
// established (link down, dial failure, no listener).
var ErrUnreachable = errors.New("comm: device unreachable")

// Layer is the uniform data communication layer.
type Layer struct {
	dialer netsim.Dialer
	clk    vclock.Clock
	reg    *profile.Registry

	mu       sync.RWMutex
	devices  map[string]*DeviceInfo
	timeouts map[string]time.Duration

	metrics Metrics
}

// New returns a communication layer using dialer for transport, clk for
// time and reg for catalog lookups.
func New(dialer netsim.Dialer, clk vclock.Clock, reg *profile.Registry) *Layer {
	return &Layer{
		dialer:   dialer,
		clk:      clk,
		reg:      reg,
		devices:  make(map[string]*DeviceInfo),
		timeouts: make(map[string]time.Duration),
	}
}

// Metrics returns the layer's interaction counters.
func (l *Layer) Metrics() *Metrics { return &l.metrics }

// SetTimeout sets the TIMEOUT value for one device type (paper §4).
func (l *Layer) SetTimeout(deviceType string, d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.timeouts[deviceType] = d
}

// Timeout returns the TIMEOUT for a device type.
func (l *Layer) Timeout(deviceType string) time.Duration {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if d, ok := l.timeouts[deviceType]; ok {
		return d
	}
	return DefaultTimeout
}

// Register adds a device to the registry. The device type must have a
// catalog. Duplicate IDs are rejected.
func (l *Layer) Register(info DeviceInfo) error {
	if info.ID == "" || info.Type == "" || info.Addr == "" {
		return errors.New("comm: device needs ID, Type and Addr")
	}
	if _, ok := l.reg.Catalog(info.Type); !ok {
		return fmt.Errorf("comm: no catalog for device type %q", info.Type)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.devices[info.ID]; dup {
		return fmt.Errorf("comm: device %q already registered", info.ID)
	}
	if info.Static == nil {
		info.Static = make(map[string]any)
	}
	if _, ok := info.Static["id"]; !ok {
		info.Static["id"] = info.ID
	}
	l.devices[info.ID] = info.clone()
	return nil
}

// Remove deletes a device from the registry; devices leave the network
// dynamically and unpredictably (paper §4).
func (l *Layer) Remove(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.devices, id)
}

// Device returns the registry entry for id.
func (l *Layer) Device(id string) (*DeviceInfo, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	d, ok := l.devices[id]
	if !ok {
		return nil, false
	}
	return d.clone(), true
}

// DevicesOfType returns all registered devices of the given type, sorted
// by ID for determinism.
func (l *Layer) DevicesOfType(deviceType string) []*DeviceInfo {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []*DeviceInfo
	for _, d := range l.devices {
		if d.Type == deviceType {
			out = append(out, d.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Devices returns all registered devices sorted by ID.
func (l *Layer) Devices() []*DeviceInfo {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]*DeviceInfo, 0, len(l.devices))
	for _, d := range l.devices {
		out = append(out, d.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Session is an open connection to one device: the connect()/close()/
// send()/receive() surface of paper §3.3.
//
// A single reader goroutine owns the connection's receive side and routes
// responses to requesters by sequence number, so a request that times out
// cannot desynchronize later requests on the same session. Sessions are
// safe for concurrent use.
type Session struct {
	layer *Layer
	info  *DeviceInfo
	conn  net.Conn

	writeMu sync.Mutex
	seq     atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan *wire.Message
	readErr error
	done    chan struct{}

	closeOnce sync.Once
	readerWG  sync.WaitGroup
}

// Connect opens a session to the device, respecting the device type's
// TIMEOUT for connection establishment.
func (l *Layer) Connect(ctx context.Context, id string) (*Session, error) {
	l.mu.RLock()
	info, ok := l.devices[id]
	l.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDevice, id)
	}
	tctx, cancel := vclock.WithTimeout(ctx, l.clk, l.Timeout(info.Type))
	defer cancel()
	l.metrics.Dials.Add(1)
	conn, err := l.dialer.Dial(tctx, info.Addr)
	if err != nil {
		l.metrics.DialFailures.Add(1)
		if tctx.Err() != nil && ctx.Err() == nil {
			return nil, fmt.Errorf("%w: connect to %s: %v", ErrTimeout, id, err)
		}
		return nil, fmt.Errorf("%w: connect to %s: %v", ErrUnreachable, id, err)
	}
	s := &Session{
		layer:   l,
		info:    info.clone(),
		conn:    conn,
		pending: make(map[uint64]chan *wire.Message),
		done:    make(chan struct{}),
	}
	s.readerWG.Add(1)
	go s.readLoop()
	return s, nil
}

// readLoop is the session's single receiver: it routes every inbound
// frame to the requester waiting on its sequence number, discarding
// responses whose requester already timed out.
func (s *Session) readLoop() {
	defer s.readerWG.Done()
	for {
		resp, err := wire.ReadFrame(s.conn)
		if err != nil {
			s.mu.Lock()
			s.readErr = fmt.Errorf("comm: receive from %s: %w", s.info.ID, err)
			close(s.done)
			s.pending = nil
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		ch := s.pending[resp.Seq]
		delete(s.pending, resp.Seq)
		s.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// Close implements close(): it releases the connection and waits for the
// reader to exit.
func (s *Session) Close() error {
	var err error
	s.closeOnce.Do(func() {
		err = s.conn.Close()
		s.readerWG.Wait()
	})
	return err
}

// Device returns the session's device info.
func (s *Session) Device() *DeviceInfo { return s.info.clone() }

// roundTrip implements send() + receive() with the device type's TIMEOUT.
func (s *Session) roundTrip(ctx context.Context, msg wire.Message) (*wire.Message, error) {
	timeout := s.layer.Timeout(s.info.Type)
	tctx, cancel := vclock.WithTimeout(ctx, s.layer.clk, timeout)
	defer cancel()

	msg.Seq = s.seq.Add(1)
	msg.Device = s.info.ID

	ch := make(chan *wire.Message, 1)
	s.mu.Lock()
	if s.readErr != nil {
		err := s.readErr
		s.mu.Unlock()
		return nil, err
	}
	s.pending[msg.Seq] = ch
	s.mu.Unlock()
	unregister := func() {
		s.mu.Lock()
		if s.pending != nil {
			delete(s.pending, msg.Seq)
		}
		s.mu.Unlock()
	}

	// send() on a goroutine so TIMEOUT can break a write to a hung or
	// congested device.
	writeErr := make(chan error, 1)
	go func() {
		s.writeMu.Lock()
		defer s.writeMu.Unlock()
		writeErr <- wire.WriteFrame(s.conn, &msg)
	}()

	select {
	case err := <-writeErr:
		if err != nil {
			unregister()
			return nil, fmt.Errorf("comm: send to %s: %w", s.info.ID, err)
		}
	case <-tctx.Done():
		unregister()
		if ctx.Err() != nil {
			return nil, fmt.Errorf("comm: %s: %w", s.info.ID, ctx.Err())
		}
		return nil, fmt.Errorf("%w: %s did not accept the request within %v", ErrTimeout, s.info.ID, timeout)
	case <-s.done:
		unregister()
		return nil, s.readError()
	}

	select {
	case resp := <-ch:
		if resp.Type == wire.TypeError {
			var ep wire.ErrorPayload
			if err := wire.DecodePayload(resp, &ep); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("comm: %s: %w", s.info.ID, ep.Err())
		}
		return resp, nil
	case <-tctx.Done():
		unregister()
		if ctx.Err() != nil {
			return nil, fmt.Errorf("comm: %s: %w", s.info.ID, ctx.Err())
		}
		return nil, fmt.Errorf("%w: %s did not answer within %v", ErrTimeout, s.info.ID, timeout)
	case <-s.done:
		unregister()
		return nil, s.readError()
	}
}

// readError returns the reader's terminal error.
func (s *Session) readError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readErr
}

// Probe checks availability and fetches the device's physical status.
func (s *Session) Probe(ctx context.Context) (*ProbeResult, error) {
	s.layer.metrics.Probes.Add(1)
	start := s.layer.clk.Now()
	resp, err := s.roundTrip(ctx, wire.Message{Type: wire.TypeProbe})
	if err != nil {
		s.layer.metrics.ProbeFailures.Add(1)
		return nil, err
	}
	var ack wire.ProbeAck
	if err := wire.DecodePayload(resp, &ack); err != nil {
		s.layer.metrics.ProbeFailures.Add(1)
		return nil, err
	}
	return &ProbeResult{
		DeviceID:   ack.DeviceID,
		DeviceType: ack.DeviceType,
		Busy:       ack.Busy,
		Status:     ack.Status,
		RTT:        s.layer.clk.Since(start),
	}, nil
}

// Read acquires one attribute value from the device.
func (s *Session) Read(ctx context.Context, attr string) (any, error) {
	s.layer.metrics.Reads.Add(1)
	resp, err := s.roundTrip(ctx, wire.Message{
		Type:    wire.TypeRead,
		Payload: wire.MustPayload(&wire.ReadReq{Attr: attr}),
	})
	if err != nil {
		s.layer.metrics.ReadFailures.Add(1)
		return nil, err
	}
	var ack wire.ReadAck
	if err := wire.DecodePayload(resp, &ack); err != nil {
		s.layer.metrics.ReadFailures.Add(1)
		return nil, err
	}
	var v any
	if err := json.Unmarshal(ack.Value, &v); err != nil {
		s.layer.metrics.ReadFailures.Add(1)
		return nil, fmt.Errorf("comm: decode %s.%s: %w", s.info.ID, attr, err)
	}
	return v, nil
}

// Exec runs one atomic operation on the device and returns its raw result.
func (s *Session) Exec(ctx context.Context, op string, args any) (json.RawMessage, error) {
	s.layer.metrics.Execs.Add(1)
	var rawArgs json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			return nil, fmt.Errorf("comm: marshal %s args: %w", op, err)
		}
		rawArgs = b
	}
	resp, err := s.roundTrip(ctx, wire.Message{
		Type:    wire.TypeExec,
		Payload: wire.MustPayload(&wire.ExecReq{Op: op, Args: rawArgs}),
	})
	if err != nil {
		s.layer.metrics.ExecFailures.Add(1)
		return nil, err
	}
	var ack wire.ExecAck
	if err := wire.DecodePayload(resp, &ack); err != nil {
		s.layer.metrics.ExecFailures.Add(1)
		return nil, err
	}
	return ack.Result, nil
}

// Probe is the one-shot convenience: connect, probe, close.
func (l *Layer) Probe(ctx context.Context, id string) (*ProbeResult, error) {
	s, err := l.Connect(ctx, id)
	if err != nil {
		l.metrics.Probes.Add(1)
		l.metrics.ProbeFailures.Add(1)
		return nil, err
	}
	defer s.Close()
	return s.Probe(ctx)
}

// ReadAttr is the one-shot convenience: connect, read, close.
func (l *Layer) ReadAttr(ctx context.Context, id, attr string) (any, error) {
	s, err := l.Connect(ctx, id)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Read(ctx, attr)
}

// Exec is the one-shot convenience: connect, exec, close.
func (l *Layer) Exec(ctx context.Context, id, op string, args any) (json.RawMessage, error) {
	s, err := l.Connect(ctx, id)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Exec(ctx, op, args)
}
