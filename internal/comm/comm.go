// Package comm implements Aorta's uniform data communication layer
// (paper §3).
//
// The layer manages the registry of networked heterogeneous devices and
// gives the query engine three things:
//
//   - the basic communication methods — connect(), close(), send() and
//     receive() — wrapped into typed Probe/Read/Exec calls that speak the
//     wire protocol to any device type (paper §3.3);
//   - virtual relational tables: each device type is abstracted into a
//     table whose tuples are generated on the fly by scan operators;
//     sensory attributes are acquired from the live device, non-sensory
//     attributes come from the registry (paper §3.2);
//   - per-device-type TIMEOUT handling so probes on unresponsive devices
//     break instead of hanging (paper §4).
//
// Unreachable devices never fail a scan — they simply contribute no tuple.
// That is the "network data independence" the paper takes from
// Hellerstein: applications see a dynamic logical view, not transmission
// loss and device failure.
//
// On top of the paper's per-interaction connect()/close() surface the
// layer runs a pooled transport (pool.go): sessions persist across
// operations keyed by device ID, reuse is health-checked, idle sessions
// are reaped, the pool is LRU-capped, and devices that refuse a dial
// enter an exponential backoff during which they are skipped without
// dialing — still contributing no tuple, so network data independence is
// preserved while a whole epoch of a continuous query no longer re-dials
// every sensor.
package comm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
	"aorta/internal/wire"
)

// DefaultTimeout is the probe/request timeout used for device types with
// no explicit setting.
const DefaultTimeout = 2 * time.Second

// DeviceInfo describes one registered device.
type DeviceInfo struct {
	ID   string
	Type string
	// Addr is the network address the device's server listens on.
	Addr string
	// Static holds the device's non-sensory attribute values (e.g. loc,
	// number, depth).
	Static map[string]any
}

// clone returns a deep copy: the Static map is copied recursively so
// nested map/slice values (e.g. loc coordinates decoded from JSON) cannot
// alias the registry's originals. Non-container values (scalars, value
// structs like geo.Mount) are copied by assignment.
func (d *DeviceInfo) clone() *DeviceInfo {
	out := *d
	out.Static = make(map[string]any, len(d.Static))
	for k, v := range d.Static {
		out.Static[k] = deepCopyValue(v)
	}
	return &out
}

// deepCopyValue recursively copies the JSON-shaped containers that appear
// in Static maps. Other types pass through by value.
func deepCopyValue(v any) any {
	switch val := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(val))
		for k, x := range val {
			out[k] = deepCopyValue(x)
		}
		return out
	case []any:
		out := make([]any, len(val))
		for i, x := range val {
			out[i] = deepCopyValue(x)
		}
		return out
	default:
		return v
	}
}

// ProbeResult is what a successful probe returns: the device's identity,
// busy flag and current physical status.
type ProbeResult struct {
	DeviceID   string
	DeviceType string
	Busy       bool
	Status     json.RawMessage
	// RTT is the probe round-trip time on the layer's clock.
	RTT time.Duration
}

// Tuple is one row of a virtual device table: attribute name → value.
// Values are JSON-decoded (float64, string, bool, or raw structures).
type Tuple map[string]any

// Metrics counts the layer's interactions with the device network,
// including the transport pool's behaviour.
type Metrics struct {
	Probes        atomic.Int64
	ProbeFailures atomic.Int64
	Reads         atomic.Int64
	ReadFailures  atomic.Int64
	Execs         atomic.Int64
	ExecFailures  atomic.Int64
	Dials         atomic.Int64
	DialFailures  atomic.Int64

	// PoolHits counts operations served by a reused live session.
	PoolHits atomic.Int64
	// PoolMisses counts operations that had to dial a new session.
	PoolMisses atomic.Int64
	// PoolEvictions counts LRU evictions forced by the session cap.
	PoolEvictions atomic.Int64
	// PoolExpired counts sessions reaped after their idle TTL.
	PoolExpired atomic.Int64
	// PoolBroken counts dead sessions evicted by the liveness check.
	PoolBroken atomic.Int64
	// PoolDrained counts sessions closed by Close/ConfigurePool drains.
	PoolDrained atomic.Int64
	// SuppressedDials counts dials skipped because the device was inside
	// its dial-failure backoff window.
	SuppressedDials atomic.Int64
	// OpenSessions is the current number of pooled live sessions (gauge).
	OpenSessions atomic.Int64

	// GateShed counts operations refused by the liveness gate (the
	// failure detector holds the device Down).
	GateShed atomic.Int64
	// BreakerOpens counts circuit-breaker open transitions (including
	// re-opens after a failed half-open trial).
	BreakerOpens atomic.Int64
	// BreakerShed counts operations refused by an open circuit breaker.
	BreakerShed atomic.Int64
}

// MetricsSnapshot is a plain-value copy of Metrics for logging and JSON
// serialization (cmd/aortad's stats endpoint).
type MetricsSnapshot struct {
	Probes          int64 `json:"probes"`
	ProbeFailures   int64 `json:"probe_failures"`
	Reads           int64 `json:"reads"`
	ReadFailures    int64 `json:"read_failures"`
	Execs           int64 `json:"execs"`
	ExecFailures    int64 `json:"exec_failures"`
	Dials           int64 `json:"dials"`
	DialFailures    int64 `json:"dial_failures"`
	PoolHits        int64 `json:"pool_hits"`
	PoolMisses      int64 `json:"pool_misses"`
	PoolEvictions   int64 `json:"pool_evictions"`
	PoolExpired     int64 `json:"pool_expired"`
	PoolBroken      int64 `json:"pool_broken"`
	PoolDrained     int64 `json:"pool_drained"`
	SuppressedDials int64 `json:"suppressed_dials"`
	OpenSessions    int64 `json:"open_sessions"`
	GateShed        int64 `json:"gate_shed"`
	BreakerOpens    int64 `json:"breaker_opens"`
	BreakerShed     int64 `json:"breaker_shed"`
}

// Snapshot copies the counters into plain values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Probes:          m.Probes.Load(),
		ProbeFailures:   m.ProbeFailures.Load(),
		Reads:           m.Reads.Load(),
		ReadFailures:    m.ReadFailures.Load(),
		Execs:           m.Execs.Load(),
		ExecFailures:    m.ExecFailures.Load(),
		Dials:           m.Dials.Load(),
		DialFailures:    m.DialFailures.Load(),
		PoolHits:        m.PoolHits.Load(),
		PoolMisses:      m.PoolMisses.Load(),
		PoolEvictions:   m.PoolEvictions.Load(),
		PoolExpired:     m.PoolExpired.Load(),
		PoolBroken:      m.PoolBroken.Load(),
		PoolDrained:     m.PoolDrained.Load(),
		SuppressedDials: m.SuppressedDials.Load(),
		OpenSessions:    m.OpenSessions.Load(),
		GateShed:        m.GateShed.Load(),
		BreakerOpens:    m.BreakerOpens.Load(),
		BreakerShed:     m.BreakerShed.Load(),
	}
}

// ErrUnknownDevice is returned when an operation names an unregistered
// device.
var ErrUnknownDevice = errors.New("comm: unknown device")

// ErrTimeout is returned when a device did not answer within its type's
// TIMEOUT.
var ErrTimeout = errors.New("comm: device timed out")

// ErrUnreachable is returned when a device connection could not be
// established (link down, dial failure, no listener).
var ErrUnreachable = errors.New("comm: device unreachable")

// Retryable reports whether err is a transient transport failure that a
// caller may reasonably retry on another device (or on the same device
// later): connect/answer timeouts, unreachable links and dial-backoff
// suppressions. Addressing errors (ErrUnknownDevice) and semantic
// device-level failures are not retryable — repeating them cannot help.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, ErrUnknownDevice) {
		return false
	}
	if errors.Is(err, ErrTimeout) || errors.Is(err, ErrUnreachable) || errors.Is(err, ErrBackoff) {
		return true
	}
	var ne interface{ Timeout() bool }
	return errors.As(err, &ne) && ne.Timeout()
}

// Layer is the uniform data communication layer.
type Layer struct {
	dialer  netsim.Dialer
	clk     vclock.Clock
	reg     *profile.Registry
	pool    *pool
	breaker *breaker

	// gate and observer hook the failure detector into every pooled
	// operation; both must be installed (SetGate/SetObserver) before the
	// layer sees concurrent traffic. Nil means no detector.
	gate     func(id string) bool
	observer func(id string, alive bool)

	mu       sync.RWMutex
	devices  map[string]*DeviceInfo
	timeouts map[string]time.Duration

	// plans caches per-(type, attrs) scan layouts: the published schema
	// plus the static/sensory column split. Catalogs are fixed after
	// startup, so entries never invalidate.
	planMu sync.RWMutex
	plans  map[string]*scanPlan

	metrics Metrics
}

// New returns a communication layer using dialer for transport, clk for
// time and reg for catalog lookups. The layer's transport pool starts
// with default tuning; adjust it with ConfigurePool.
func New(dialer netsim.Dialer, clk vclock.Clock, reg *profile.Registry) *Layer {
	l := &Layer{
		dialer:   dialer,
		clk:      clk,
		reg:      reg,
		devices:  make(map[string]*DeviceInfo),
		timeouts: make(map[string]time.Duration),
		plans:    make(map[string]*scanPlan),
	}
	l.pool = newPool(l, PoolConfig{})
	l.breaker = newBreaker(l, BreakerConfig{})
	return l
}

// Metrics returns the layer's interaction counters.
func (l *Layer) Metrics() *Metrics { return &l.metrics }

// SetGate installs the liveness gate: every pooled operation asks
// gate(id) first and is shed (with an error matching ErrShed and
// ErrUnreachable) when it returns false. Install before concurrent use.
func (l *Layer) SetGate(gate func(id string) bool) { l.gate = gate }

// SetObserver installs the evidence sink: after every pooled operation
// that actually contacted (or failed to contact) the device, the layer
// reports observer(id, alive). Operations that never reached the network
// — gate sheds, breaker sheds, backoff suppressions, unknown devices,
// caller cancellation — produce no evidence. Install before concurrent
// use.
func (l *Layer) SetObserver(fn func(id string, alive bool)) { l.observer = fn }

// shed runs the liveness gate and the circuit breaker for one operation,
// in that order. A nil error admits the operation.
func (l *Layer) shed(id string) error {
	if l.gate != nil && !l.gate(id) {
		l.metrics.GateShed.Add(1)
		return fmt.Errorf("%w: %w: %s", ErrUnreachable, ErrShed, id)
	}
	return l.breaker.allow(id)
}

// note classifies one finished operation's error into liveness evidence
// and feeds the circuit breaker. Contact — success or a semantic device
// error — is alive; transport failures are dead; sheds, suppressions and
// cancellations are silence (no evidence, and a half-open breaker trial
// is abandoned rather than judged).
func (l *Layer) note(id string, err error) {
	alive, evidence := classifyEvidence(err)
	if !evidence {
		l.breaker.abandon(id)
		return
	}
	l.breaker.record(id, alive)
	if l.observer != nil {
		l.observer(id, alive)
	}
}

// classifyEvidence maps an operation error to (alive, evidence).
func classifyEvidence(err error) (alive, evidence bool) {
	switch {
	case err == nil:
		return true, true
	case errors.Is(err, ErrShed), errors.Is(err, ErrBreakerOpen), errors.Is(err, ErrBackoff),
		errors.Is(err, ErrUnknownDevice), errors.Is(err, context.Canceled):
		return false, false
	case Retryable(err):
		return false, true
	default:
		// The device answered with a semantic error: very much alive.
		return true, true
	}
}

// SetTimeout sets the TIMEOUT value for one device type (paper §4).
func (l *Layer) SetTimeout(deviceType string, d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.timeouts[deviceType] = d
}

// Timeout returns the TIMEOUT for a device type.
func (l *Layer) Timeout(deviceType string) time.Duration {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if d, ok := l.timeouts[deviceType]; ok {
		return d
	}
	return DefaultTimeout
}

// Register adds a device to the registry. The device type must have a
// catalog. Duplicate IDs are rejected.
func (l *Layer) Register(info DeviceInfo) error {
	if info.ID == "" || info.Type == "" || info.Addr == "" {
		return errors.New("comm: device needs ID, Type and Addr")
	}
	if _, ok := l.reg.Catalog(info.Type); !ok {
		return fmt.Errorf("comm: no catalog for device type %q", info.Type)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.devices[info.ID]; dup {
		return fmt.Errorf("comm: device %q already registered", info.ID)
	}
	if info.Static == nil {
		info.Static = make(map[string]any)
	}
	if _, ok := info.Static["id"]; !ok {
		info.Static["id"] = info.ID
	}
	l.devices[info.ID] = info.clone()
	return nil
}

// Remove deletes a device from the registry; devices leave the network
// dynamically and unpredictably (paper §4).
func (l *Layer) Remove(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.devices, id)
}

// Unregister removes a device and tears down its transport state: the
// pooled session is closed, the dial-backoff entry dropped and the
// circuit breaker reset. The full dynamic-membership departure path.
func (l *Layer) Unregister(id string) {
	l.Remove(id)
	l.pool.forget(id)
	l.breaker.reset(id)
}

// Readmit clears a device's negative transport state — dial backoff and
// circuit breaker — so the next operation dials immediately. Called when
// the failure detector declares a device recovered or it re-registers
// after churn.
func (l *Layer) Readmit(id string) {
	l.pool.clearBackoff(id)
	l.breaker.reset(id)
}

// Device returns the registry entry for id.
func (l *Layer) Device(id string) (*DeviceInfo, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	d, ok := l.devices[id]
	if !ok {
		return nil, false
	}
	return d.clone(), true
}

// DevicesOfType returns all registered devices of the given type, sorted
// by ID for determinism.
func (l *Layer) DevicesOfType(deviceType string) []*DeviceInfo {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []*DeviceInfo
	for _, d := range l.devices {
		if d.Type == deviceType {
			out = append(out, d.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// devicesOfTypeRef returns the registry's own entries for a device type,
// sorted by ID — no cloning. Registry entries are immutable after
// Register, so internal hot paths (scans) read them in place instead of
// deep-copying every device's Static map per epoch. Callers must not
// mutate the returned entries.
func (l *Layer) devicesOfTypeRef(deviceType string) []*DeviceInfo {
	l.mu.RLock()
	var out []*DeviceInfo
	for _, d := range l.devices {
		if d.Type == deviceType {
			out = append(out, d)
		}
	}
	l.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Devices returns all registered devices sorted by ID.
func (l *Layer) Devices() []*DeviceInfo {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]*DeviceInfo, 0, len(l.devices))
	for _, d := range l.devices {
		out = append(out, d.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Session is an open connection to one device: the connect()/close()/
// send()/receive() surface of paper §3.3.
//
// A single reader goroutine owns the connection's receive side and routes
// responses to requesters by sequence number, so a request that times out
// cannot desynchronize later requests on the same session. Sessions are
// safe for concurrent use.
type Session struct {
	layer *Layer
	info  *DeviceInfo
	conn  net.Conn

	writeMu sync.Mutex
	seq     atomic.Uint64
	// broken is set the instant a frame write fails: the stream may hold
	// a half-written frame, so the session is dead even if the reader
	// goroutine has not yet observed the closed connection.
	broken atomic.Bool

	mu      sync.Mutex
	pending map[uint64]chan *wire.Message
	readErr error
	done    chan struct{}

	closeOnce sync.Once
	readerWG  sync.WaitGroup
}

// Connect opens a dedicated (unpooled) session to the device, respecting
// the device type's TIMEOUT for connection establishment. The caller owns
// the session and must Close it. Most callers should use WithSession or
// the one-call Probe/ReadAttr/Exec helpers, which reuse pooled sessions.
func (l *Layer) Connect(ctx context.Context, id string) (*Session, error) {
	l.mu.RLock()
	info, ok := l.devices[id]
	l.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDevice, id)
	}
	tctx, cancel := vclock.WithTimeout(ctx, l.clk, l.Timeout(info.Type))
	defer cancel()
	l.metrics.Dials.Add(1)
	conn, err := l.dialer.Dial(tctx, info.Addr)
	if err != nil {
		l.metrics.DialFailures.Add(1)
		if tctx.Err() != nil && ctx.Err() == nil {
			return nil, fmt.Errorf("%w: connect to %s: %v", ErrTimeout, id, err)
		}
		return nil, fmt.Errorf("%w: connect to %s: %v", ErrUnreachable, id, err)
	}
	s := &Session{
		layer:   l,
		info:    info.clone(),
		conn:    conn,
		pending: make(map[uint64]chan *wire.Message),
		done:    make(chan struct{}),
	}
	s.readerWG.Add(1)
	go s.readLoop()
	return s, nil
}

// readLoop is the session's single receiver: it routes every inbound
// frame to the requester waiting on its sequence number, discarding
// responses whose requester already timed out.
func (s *Session) readLoop() {
	defer s.readerWG.Done()
	for {
		resp, err := wire.ReadFrame(s.conn)
		if err != nil {
			s.mu.Lock()
			s.readErr = fmt.Errorf("comm: receive from %s: %w", s.info.ID, err)
			close(s.done)
			s.pending = nil
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		ch := s.pending[resp.Seq]
		delete(s.pending, resp.Seq)
		s.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// alive reports whether the session is still usable — the pool's
// liveness check. A false return means the connection is dead and every
// future round trip on this session would fail. The broken flag covers
// the race where a write saw the closed connection before the reader
// goroutine did.
func (s *Session) alive() bool {
	if s.broken.Load() {
		return false
	}
	select {
	case <-s.done:
		return false
	default:
		return true
	}
}

// Close implements close(): it releases the connection and waits for the
// reader to exit.
func (s *Session) Close() error {
	var err error
	s.closeOnce.Do(func() {
		err = s.conn.Close()
		s.readerWG.Wait()
	})
	return err
}

// Device returns the session's device info.
func (s *Session) Device() *DeviceInfo { return s.info.clone() }

// roundTrip implements send() + receive() with the device type's TIMEOUT.
func (s *Session) roundTrip(ctx context.Context, msg wire.Message) (*wire.Message, error) {
	timeout := s.layer.Timeout(s.info.Type)
	tctx, cancel := vclock.WithTimeout(ctx, s.layer.clk, timeout)
	defer cancel()

	msg.Seq = s.seq.Add(1)
	msg.Device = s.info.ID

	ch := make(chan *wire.Message, 1)
	s.mu.Lock()
	if s.readErr != nil {
		err := s.readErr
		s.mu.Unlock()
		return nil, err
	}
	s.pending[msg.Seq] = ch
	s.mu.Unlock()
	unregister := func() {
		s.mu.Lock()
		if s.pending != nil {
			delete(s.pending, msg.Seq)
		}
		s.mu.Unlock()
	}

	// send() on a goroutine so TIMEOUT can break a write to a hung or
	// congested device.
	writeErr := make(chan error, 1)
	go func() {
		s.writeMu.Lock()
		defer s.writeMu.Unlock()
		writeErr <- wire.WriteFrame(s.conn, &msg)
	}()

	select {
	case err := <-writeErr:
		if err != nil {
			s.broken.Store(true)
			unregister()
			return nil, fmt.Errorf("comm: send to %s: %w", s.info.ID, err)
		}
	case <-tctx.Done():
		unregister()
		if ctx.Err() != nil {
			return nil, fmt.Errorf("comm: %s: %w", s.info.ID, ctx.Err())
		}
		return nil, fmt.Errorf("%w: %s did not accept the request within %v", ErrTimeout, s.info.ID, timeout)
	case <-s.done:
		unregister()
		return nil, s.readError()
	}

	select {
	case resp := <-ch:
		if resp.Type == wire.TypeError {
			var ep wire.ErrorPayload
			if err := wire.DecodePayload(resp, &ep); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("comm: %s: %w", s.info.ID, ep.Err())
		}
		return resp, nil
	case <-tctx.Done():
		unregister()
		if ctx.Err() != nil {
			return nil, fmt.Errorf("comm: %s: %w", s.info.ID, ctx.Err())
		}
		return nil, fmt.Errorf("%w: %s did not answer within %v", ErrTimeout, s.info.ID, timeout)
	case <-s.done:
		unregister()
		return nil, s.readError()
	}
}

// readError returns the reader's terminal error.
func (s *Session) readError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readErr
}

// Probe checks availability and fetches the device's physical status.
func (s *Session) Probe(ctx context.Context) (*ProbeResult, error) {
	s.layer.metrics.Probes.Add(1)
	start := s.layer.clk.Now()
	resp, err := s.roundTrip(ctx, wire.Message{Type: wire.TypeProbe})
	if err != nil {
		s.layer.metrics.ProbeFailures.Add(1)
		return nil, err
	}
	var ack wire.ProbeAck
	if err := wire.DecodePayload(resp, &ack); err != nil {
		s.layer.metrics.ProbeFailures.Add(1)
		return nil, err
	}
	return &ProbeResult{
		DeviceID:   ack.DeviceID,
		DeviceType: ack.DeviceType,
		Busy:       ack.Busy,
		Status:     ack.Status,
		RTT:        s.layer.clk.Since(start),
	}, nil
}

// Read acquires one attribute value from the device.
func (s *Session) Read(ctx context.Context, attr string) (any, error) {
	s.layer.metrics.Reads.Add(1)
	resp, err := s.roundTrip(ctx, wire.Message{
		Type:    wire.TypeRead,
		Payload: wire.MustPayload(&wire.ReadReq{Attr: attr}),
	})
	if err != nil {
		s.layer.metrics.ReadFailures.Add(1)
		return nil, err
	}
	var ack wire.ReadAck
	if err := wire.DecodePayload(resp, &ack); err != nil {
		s.layer.metrics.ReadFailures.Add(1)
		return nil, err
	}
	var v any
	if err := json.Unmarshal(ack.Value, &v); err != nil {
		s.layer.metrics.ReadFailures.Add(1)
		return nil, fmt.Errorf("comm: decode %s.%s: %w", s.info.ID, attr, err)
	}
	return v, nil
}

// Exec runs one atomic operation on the device and returns its raw result.
func (s *Session) Exec(ctx context.Context, op string, args any) (json.RawMessage, error) {
	s.layer.metrics.Execs.Add(1)
	var rawArgs json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			return nil, fmt.Errorf("comm: marshal %s args: %w", op, err)
		}
		rawArgs = b
	}
	resp, err := s.roundTrip(ctx, wire.Message{
		Type:    wire.TypeExec,
		Payload: wire.MustPayload(&wire.ExecReq{Op: op, Args: rawArgs}),
	})
	if err != nil {
		s.layer.metrics.ExecFailures.Add(1)
		return nil, err
	}
	var ack wire.ExecAck
	if err := wire.DecodePayload(resp, &ack); err != nil {
		s.layer.metrics.ExecFailures.Add(1)
		return nil, err
	}
	return ack.Result, nil
}

// Probe is the one-call convenience, now a thin wrapper over the pooled
// transport: the probe rides a persistent session instead of paying
// connect()/close() per interaction.
func (l *Layer) Probe(ctx context.Context, id string) (*ProbeResult, error) {
	var res *ProbeResult
	ran := false
	err := l.WithSession(ctx, id, func(s *Session) error {
		ran = true
		var err error
		res, err = s.Probe(ctx)
		return err
	})
	if err != nil {
		// Keep the pre-pool accounting: a probe that could not even get a
		// session still counts as a failed probe.
		if !ran {
			l.metrics.Probes.Add(1)
			l.metrics.ProbeFailures.Add(1)
		}
		return nil, err
	}
	return res, nil
}

// ReadAttr is the one-call convenience: acquire one attribute value over
// a pooled session.
func (l *Layer) ReadAttr(ctx context.Context, id, attr string) (any, error) {
	var v any
	err := l.WithSession(ctx, id, func(s *Session) error {
		var err error
		v, err = s.Read(ctx, attr)
		return err
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Exec is the one-call convenience: run one atomic operation over a
// pooled session.
func (l *Layer) Exec(ctx context.Context, id, op string, args any) (json.RawMessage, error) {
	var raw json.RawMessage
	err := l.WithSession(ctx, id, func(s *Session) error {
		var err error
		raw, err = s.Exec(ctx, op, args)
		return err
	})
	if err != nil {
		return nil, err
	}
	return raw, nil
}
