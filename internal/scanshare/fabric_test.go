package scanshare

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"aorta/internal/comm"
	"aorta/internal/match"
	"aorta/internal/vclock"
)

// testRig is a fabric over a manual clock and a counting fake scanner that
// serves D synthetic sensor tuples per scan.
type testRig struct {
	clk       *vclock.Manual
	fabric    *Fabric
	scans     atomic.Int64
	typeScans map[string]*atomic.Int64
}

func newTestRig(devices int) *testRig {
	r := &testRig{
		clk:       vclock.NewManual(time.Unix(1_000_000, 0)),
		typeScans: map[string]*atomic.Int64{},
	}
	r.fabric = New(r.clk, func(_ context.Context, deviceType string, _ []string) (*comm.Batch, error) {
		r.scans.Add(1)
		if c, ok := r.typeScans[deviceType]; ok {
			c.Add(1)
		}
		tuples := make([]comm.Tuple, devices)
		for i := range tuples {
			tuples[i] = comm.Tuple{
				"id":      fmt.Sprintf("mote-%d", i),
				"accel_x": float64(i * 100),
			}
		}
		return comm.BatchFromTuples([]string{"id", "accel_x"}, tuples), nil
	})
	return r
}

// awaitWaiters polls until at least n goroutines are parked on the manual
// clock, so an Advance is guaranteed to reach the cohort loops.
func awaitWaiters(t *testing.T, clk *vclock.Manual, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d clock waiters (have %d)", n, clk.Waiters())
		}
		time.Sleep(time.Millisecond)
	}
}

// fire advances the clock by d once the cohort loops are parked on it.
func (r *testRig) fire(t *testing.T, d time.Duration) {
	t.Helper()
	awaitWaiters(t, r.clk, 1)
	r.clk.Advance(d)
}

// recvBatch reads one batch with a real-time timeout.
func recvBatch(t *testing.T, sub *Subscription) Batch {
	t.Helper()
	select {
	case b := <-sub.C:
		return b
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a batch")
		return Batch{}
	}
}

func sensorSpec(preds ...match.Predicate) []TableSpec {
	return []TableSpec{{Alias: "s", DeviceType: "sensor", Attrs: []string{"id", "accel_x"}, Preds: preds}}
}

// TestScanCountIndependentOfQueries is the acceptance property: with Q
// queries subscribed over the same D devices, one epoch costs exactly one
// device-type scan (D device probes) no matter how large Q is.
func TestScanCountIndependentOfQueries(t *testing.T) {
	const devices, queries = 10, 50
	r := newTestRig(devices)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	subs := make([]*Subscription, queries)
	for i := range subs {
		subs[i] = r.fabric.Subscribe(time.Second, sensorSpec())
	}
	r.fabric.Start(ctx)
	defer r.fabric.Stop()

	r.fire(t, time.Second)
	for i, sub := range subs {
		b := recvBatch(t, sub)
		if got := b.Tables["s"].Len(); got != devices {
			t.Fatalf("sub %d: batch carries %d tuples, want %d", i, got, devices)
		}
		if b.Seq != 1 {
			t.Fatalf("sub %d: Seq = %d, want 1", i, b.Seq)
		}
		b.Release()
	}

	if got := r.scans.Load(); got != 1 {
		t.Fatalf("epoch with %d subscribers issued %d scans, want exactly 1", queries, got)
	}
	m := r.fabric.Metrics()
	if m.TypeScans != 1 || m.DeviceScans != devices {
		t.Fatalf("TypeScans/DeviceScans = %d/%d, want 1/%d", m.TypeScans, m.DeviceScans, devices)
	}
	if m.ScansCoalesced != queries-1 {
		t.Fatalf("ScansCoalesced = %d, want %d", m.ScansCoalesced, queries-1)
	}
	if m.BatchesDelivered != queries {
		t.Fatalf("BatchesDelivered = %d, want %d", m.BatchesDelivered, queries)
	}
}

// TestPredicateRouting checks that the per-type index narrows each
// subscription's batch to the tuples its predicates admit.
func TestPredicateRouting(t *testing.T) {
	r := newTestRig(10)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	hot := r.fabric.Subscribe(time.Second, sensorSpec(
		match.Predicate{Attr: "accel_x", Op: match.OpGT, Value: float64(500)}))
	one := r.fabric.Subscribe(time.Second, sensorSpec(
		match.Predicate{Attr: "id", Op: match.OpEQ, Value: "mote-3"}))
	all := r.fabric.Subscribe(time.Second, sensorSpec())
	r.fabric.Start(ctx)
	defer r.fabric.Stop()

	r.fire(t, time.Second)
	hb := recvBatch(t, hot)
	if got := hb.Tables["s"].Len(); got != 4 {
		t.Errorf("accel_x > 500 routed %d tuples, want 4", got)
	}
	hb.Release()
	b := recvBatch(t, one)
	if got := b.Tables["s"].Len(); got != 1 {
		t.Fatalf("id = mote-3 routed %d tuples, want 1", got)
	}
	if id := b.Tables["s"].Row(0)["id"]; id != "mote-3" {
		t.Errorf("routed tuple id = %v, want mote-3", id)
	}
	b.Release()
	ab := recvBatch(t, all)
	if got := ab.Tables["s"].Len(); got != 10 {
		t.Errorf("residual subscription routed %d tuples, want all 10", got)
	}
	ab.Release()

	m := r.fabric.Metrics()
	if m.IndexProbes != 10 {
		t.Errorf("IndexProbes = %d, want 10", m.IndexProbes)
	}
	if m.IndexHits != 5 { // 4 range hits + 1 equality hit
		t.Errorf("IndexHits = %d, want 5", m.IndexHits)
	}
	if m.ResidualHits != 10 {
		t.Errorf("ResidualHits = %d, want 10", m.ResidualHits)
	}
}

// TestEpochAlignment: a 3s subscription joins the 1s cohort with stride 3 —
// one shared loop, with the slower query served every third tick.
func TestEpochAlignment(t *testing.T) {
	r := newTestRig(3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	fast := r.fabric.Subscribe(time.Second, sensorSpec())
	slow := r.fabric.Subscribe(3*time.Second, sensorSpec())
	r.fabric.Start(ctx)
	defer r.fabric.Stop()

	if m := r.fabric.Metrics(); m.Cohorts != 1 {
		t.Fatalf("compatible epochs built %d cohorts, want 1", m.Cohorts)
	}

	for tick := 1; tick <= 3; tick++ {
		r.fire(t, time.Second)
		if b := recvBatch(t, fast); b.Seq != int64(tick) {
			t.Fatalf("fast sub: Seq = %d at tick %d", b.Seq, tick)
		}
		if tick < 3 {
			select {
			case b := <-slow.C:
				t.Fatalf("slow sub received Seq %d before its stride was due", b.Seq)
			default:
			}
		}
	}
	if b := recvBatch(t, slow); b.Seq != 3 {
		t.Fatalf("slow sub: Seq = %d, want 3", b.Seq)
	}

	// An incompatible epoch founds its own cohort.
	odd := r.fabric.Subscribe(2500*time.Millisecond, sensorSpec())
	defer odd.Close()
	if m := r.fabric.Metrics(); m.Cohorts != 2 {
		t.Fatalf("incompatible epoch: %d cohorts, want 2", m.Cohorts)
	}
}

// TestEpochAlignmentOrderIndependent: a finer epoch arriving after coarser
// cohorts absorbs them — the cohort set does not depend on which query
// subscribed first, and the merged cohort serves every stride exactly.
func TestEpochAlignmentOrderIndependent(t *testing.T) {
	r := newTestRig(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	slowA := r.fabric.Subscribe(2*time.Second, sensorSpec())
	defer slowA.Close()
	slowB := r.fabric.Subscribe(3*time.Second, sensorSpec())
	defer slowB.Close()
	if m := r.fabric.Metrics(); m.Cohorts != 2 {
		t.Fatalf("before merge: %d cohorts, want 2", m.Cohorts)
	}
	fast := r.fabric.Subscribe(time.Second, sensorSpec())
	defer fast.Close()
	if m := r.fabric.Metrics(); m.Cohorts != 1 {
		t.Fatalf("after 1s subscription: %d cohorts, want 1 (coarser cohorts absorbed)", m.Cohorts)
	}

	r.fabric.Start(ctx)
	defer r.fabric.Stop()

	// Six unit ticks serve fast 6×, the 2s sub 3×, the 3s sub 2×.
	got := map[string]int{}
	expected := 0
	for tick := 1; tick <= 6; tick++ {
		r.fire(t, time.Second)
		expected = tick + tick/2 + tick/3
		deadline := time.Now().Add(5 * time.Second)
		for r.fabric.Metrics().BatchesDelivered != int64(expected) {
			if time.Now().After(deadline) {
				t.Fatalf("tick %d: delivered %d batches, want %d",
					tick, r.fabric.Metrics().BatchesDelivered, expected)
			}
			time.Sleep(time.Millisecond)
		}
		for name, sub := range map[string]*Subscription{"fast": fast, "slowA": slowA, "slowB": slowB} {
			select {
			case <-sub.C:
				got[name]++
			default:
			}
		}
	}
	if got["fast"] != 6 || got["slowA"] != 3 || got["slowB"] != 2 {
		t.Fatalf("deliveries = %v, want fast=6 slowA=3 slowB=2", got)
	}
	if got := r.scans.Load(); got != 6 {
		t.Fatalf("6 merged ticks issued %d scans, want 6", got)
	}
}

// TestRuntimeCohortMerge: absorbing a running cohort mid-flight migrates
// its subscriptions onto the finer loop without losing service.
func TestRuntimeCohortMerge(t *testing.T) {
	r := newTestRig(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r.fabric.Start(ctx)
	defer r.fabric.Stop()

	slow := r.fabric.Subscribe(2*time.Second, sensorSpec())
	defer slow.Close()
	awaitWaiters(t, r.clk, 1) // the 2s cohort loop is running
	fast := r.fabric.Subscribe(time.Second, sensorSpec())
	defer fast.Close()
	if m := r.fabric.Metrics(); m.Cohorts != 1 {
		t.Fatalf("after merge: %d cohorts, want 1", m.Cohorts)
	}

	// The cancelled 2s loop leaves a stale clock waiter, so drive by
	// repeated unit advances until both subscriptions are served.
	gotFast, gotSlow := 0, 0
	deadline := time.Now().Add(5 * time.Second)
	for gotFast < 2 || gotSlow < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("deliveries after merge: fast=%d slow=%d, want ≥2/≥1", gotFast, gotSlow)
		}
		if r.clk.Waiters() > 0 {
			r.clk.Advance(time.Second)
		}
		for drained := true; drained; {
			drained = false
			select {
			case <-fast.C:
				gotFast++
				drained = true
			case <-slow.C:
				gotSlow++
				drained = true
			default:
			}
		}
		time.Sleep(time.Millisecond)
	}
}

// TestUnsubscribeMidEpoch is the DROP guard: closing a subscription while
// its cohort is mid-scan neither blocks the fabric nor leaks the
// subscription or its index entries.
func TestUnsubscribeMidEpoch(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	entered := make(chan struct{})
	release := make(chan struct{})
	fabric := New(clk, func(context.Context, string, []string) (*comm.Batch, error) {
		entered <- struct{}{}
		<-release
		return comm.BatchFromTuples([]string{"id", "accel_x"},
			[]comm.Tuple{{"id": "mote-0", "accel_x": 100.0}}), nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	keep := fabric.Subscribe(time.Second, sensorSpec())
	drop := fabric.Subscribe(time.Second, sensorSpec(
		match.Predicate{Attr: "accel_x", Op: match.OpGE, Value: float64(0)}))
	fabric.Start(ctx)
	defer fabric.Stop()

	awaitWaiters(t, clk, 1)
	clk.Advance(time.Second)
	<-entered // the epoch is now in flight, blocked inside the scan

	closed := make(chan struct{})
	go func() {
		drop.Close()
		drop.Close() // idempotent
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked during an in-flight epoch")
	}
	close(release)

	// The surviving subscription still gets its batch; the fabric did not
	// stall on the departed one.
	kb := recvBatch(t, keep)
	if got := kb.Tables["s"].Len(); got != 1 {
		t.Fatalf("surviving sub received %d tuples, want 1", got)
	}
	kb.Release()

	// No leaks: the subscription, its index entries, and — once the last
	// member leaves — the cohort itself are gone.
	if m := fabric.Metrics(); m.Subscribers != 1 || m.Cohorts != 1 {
		t.Fatalf("after mid-epoch close: %d subscribers / %d cohorts, want 1/1", m.Subscribers, m.Cohorts)
	}
	keep.Close()
	if m := fabric.Metrics(); m.Subscribers != 0 || m.Cohorts != 0 {
		t.Fatalf("after last close: %d subscribers / %d cohorts, want 0/0", m.Subscribers, m.Cohorts)
	}
	fabric.mu.Lock()
	leaked := len(fabric.idx)
	fabric.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d per-type predicate indexes leaked after all closes", leaked)
	}
}

// TestSlowConsumerDropsNotBlocks: a subscriber that stops draining misses
// epochs (counted) while the fabric keeps ticking.
func TestSlowConsumerDropsNotBlocks(t *testing.T) {
	r := newTestRig(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sub := r.fabric.Subscribe(time.Second, sensorSpec())
	r.fabric.Start(ctx)
	defer r.fabric.Stop()

	const ticks = subChanBuf + 3
	for i := 0; i < ticks; i++ {
		r.fire(t, time.Second)
		// Wait for the tick to finish delivering before firing the next,
		// so the drop accounting is deterministic.
		deadline := time.Now().Add(5 * time.Second)
		for {
			m := r.fabric.Metrics()
			if m.BatchesDelivered+m.BatchesDropped == int64(i+1) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("tick %d never completed delivery", i+1)
			}
			time.Sleep(time.Millisecond)
		}
	}

	m := r.fabric.Metrics()
	if m.BatchesDelivered != subChanBuf {
		t.Fatalf("BatchesDelivered = %d, want %d", m.BatchesDelivered, subChanBuf)
	}
	if m.BatchesDropped != ticks-subChanBuf {
		t.Fatalf("BatchesDropped = %d, want %d", m.BatchesDropped, ticks-subChanBuf)
	}

	// The fabric recovered: drain the buffer and the next epoch arrives.
	for i := 0; i < subChanBuf; i++ {
		recvBatch(t, sub)
	}
	r.fire(t, time.Second)
	recvBatch(t, sub)
}

// TestScanErrorPropagates: a failing scan surfaces on the batch rather than
// killing the cohort.
func TestScanErrorPropagates(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	boom := errors.New("catalog gone")
	var fail atomic.Bool
	fabric := New(clk, func(context.Context, string, []string) (*comm.Batch, error) {
		if fail.Load() {
			return nil, boom
		}
		return comm.BatchFromTuples([]string{"id"}, []comm.Tuple{{"id": "mote-0"}}), nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sub := fabric.Subscribe(time.Second, sensorSpec())
	defer sub.Close()
	fabric.Start(ctx)
	defer fabric.Stop()

	fail.Store(true)
	awaitWaiters(t, clk, 1)
	clk.Advance(time.Second)
	if b := recvBatch(t, sub); !errors.Is(b.Err, boom) {
		t.Fatalf("batch Err = %v, want %v", b.Err, boom)
	}
	if m := fabric.Metrics(); m.ScanErrors != 1 {
		t.Fatalf("ScanErrors = %d, want 1", m.ScanErrors)
	}

	fail.Store(false)
	awaitWaiters(t, clk, 1)
	clk.Advance(time.Second)
	if b := recvBatch(t, sub); b.Err != nil || b.Tables["s"].Len() != 1 {
		t.Fatalf("cohort did not recover after a scan error: %+v", b)
	} else {
		b.Release()
	}
}

// TestStopAndRestart: Stop parks the fabric without losing subscriptions;
// Start resumes the cohorts.
func TestStopAndRestart(t *testing.T) {
	r := newTestRig(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sub := r.fabric.Subscribe(time.Second, sensorSpec())
	defer sub.Close()
	r.fabric.Start(ctx)
	r.fire(t, time.Second)
	recvBatch(t, sub)

	r.fabric.Stop()
	r.clk.Advance(time.Second) // flushes the abandoned clock waiter
	select {
	case b := <-sub.C:
		t.Fatalf("received Seq %d while stopped", b.Seq)
	default:
	}

	r.fabric.Start(ctx)
	defer r.fabric.Stop()
	r.fire(t, time.Second)
	if b := recvBatch(t, sub); b.Tables["s"].Len() != 1 {
		t.Fatalf("no delivery after restart: %+v", b)
	} else {
		b.Release()
	}
}

// TestSharing reports the coalesced scan groups for SHOW SCANS.
func TestSharing(t *testing.T) {
	r := newTestRig(1)
	s1 := r.fabric.Subscribe(time.Second, sensorSpec())
	defer s1.Close()
	s2 := r.fabric.Subscribe(2*time.Second, sensorSpec())
	defer s2.Close()
	s3 := r.fabric.Subscribe(time.Second, []TableSpec{
		{Alias: "c", DeviceType: "camera", Attrs: []string{"id", "ip"}},
		{Alias: "s", DeviceType: "sensor", Attrs: []string{"id", "loc"}},
	})
	defer s3.Close()

	got := r.fabric.Sharing()
	want := []ShareInfo{
		{DeviceType: "camera", Epoch: time.Second, Queries: 1, Attrs: []string{"id", "ip"}},
		{DeviceType: "sensor", Epoch: time.Second, Queries: 3, Attrs: []string{"accel_x", "id", "loc"}},
	}
	if len(got) != len(want) {
		t.Fatalf("Sharing returned %d groups, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].DeviceType != want[i].DeviceType || got[i].Epoch != want[i].Epoch || got[i].Queries != want[i].Queries {
			t.Errorf("group %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if fmt.Sprint(got[1].Attrs) != fmt.Sprint(want[1].Attrs) {
		t.Errorf("sensor attr union = %v, want %v", got[1].Attrs, want[1].Attrs)
	}
}

// BenchmarkTick100Subs measures one coalesced epoch serving 100 routed
// subscriptions over 50 devices.
func BenchmarkTick100Subs(b *testing.B) {
	r := newTestRig(50)
	for i := 0; i < 100; i++ {
		sub := r.fabric.Subscribe(time.Second, sensorSpec(
			match.Predicate{Attr: "accel_x", Op: match.OpGT, Value: float64((i % 10) * 500)}))
		defer sub.Close()
	}
	r.fabric.mu.Lock()
	c := r.fabric.cohorts[time.Second]
	r.fabric.mu.Unlock()

	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.fabric.tick(ctx, c)
	}
}

// BenchmarkScanFanout compares fan-out strategies for one 50-device scan
// delivered to 100 subscriptions: before copies the scan into per-query
// tuple slices (the pre-columnar fabric), after hands each subscription a
// refcounted column view over the shared batch.
func BenchmarkScanFanout(b *testing.B) {
	const devices, queries = 50, 100
	schema := comm.NewSchema([]string{"id", "accel_x"}, []comm.Kind{comm.KindString, comm.KindFloat})
	scan := comm.NewBatch(schema)
	for i := 0; i < devices; i++ {
		scan.Append([]any{fmt.Sprintf("mote-%d", i), float64(i * 100)})
	}
	attrs := []string{"id", "accel_x"}

	b.Run("before", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for q := 0; q < queries; q++ {
				tuples := make([]comm.Tuple, devices)
				for r := 0; r < devices; r++ {
					tuples[r] = scan.Row(r)
				}
				_ = tuples
			}
		}
	})
	b.Run("after", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for q := 0; q < queries; q++ {
				scan.Retain()
				v := TableView{Batch: scan, Attrs: attrs}
				_ = v
				scan.Release()
			}
		}
	})
}
