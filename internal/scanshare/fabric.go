// Package scanshare implements the shared scan fabric: per-device sampling
// that is coalesced across queries, so each (device, epoch) pair is polled
// exactly once per epoch no matter how many queries subscribe.
//
// The engine's naive layout runs one sampling loop per registered query — N
// queries over the same motes cost N device scans per epoch and N full
// WHERE evaluations per tuple. The fabric inverts that: queries subscribe
// with their table needs (device type, attribute set, predicates) and an
// epoch; subscriptions with compatible EVERY clauses are grouped into epoch
// cohorts that tick together. Each tick scans every needed device type once
// — producing one columnar comm.Batch with the union of the subscribers'
// attribute sets — routes the whole batch through a per-type predicate
// index (internal/match.MatchBatch) so each row reaches only the queries
// whose indexable predicates it satisfies, and fans out TableViews: row
// selections over the shared batch (reference-counted, zero tuple copies)
// with a per-subscription attribute projection. Delivery is over
// non-blocking buffered channels — a slow query drops epochs rather than
// stalling the fabric, the same results-hub discipline as the engine's
// outcome log.
//
// Epoch alignment: a subscription with epoch E joins an existing cohort
// with base B when E is an integer multiple of B (choosing the largest
// such B), receiving every (E/B)-th tick; otherwise it founds a cohort
// with base E. Coarser cohorts whose base the chosen one divides are
// absorbed into it, so the cohort set converges to the same shape
// regardless of subscription order. Cohorts are reference-counted — the
// last unsubscribe stops the cohort's loop and removes it.
//
// The fabric scans through the caller-provided ScanFunc, which in the
// engine wraps the pooled transport: dial backoff, circuit breakers and
// the liveness gate all apply, so Down devices are never scanned here
// either.
package scanshare

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aorta/internal/comm"
	"aorta/internal/match"
	"aorta/internal/vclock"
)

// ScanFunc materializes the virtual table of one device type as one
// columnar batch: one row per reachable device, restricted to attrs. The
// fabric takes over the caller reference of the returned batch.
type ScanFunc func(ctx context.Context, deviceType string, attrs []string) (*comm.Batch, error)

// TableSpec is one FROM-table need of a subscribing query.
type TableSpec struct {
	// Alias keys the table's tuples in delivered batches.
	Alias string
	// DeviceType selects the virtual table.
	DeviceType string
	// Attrs are the columns the query needs; the fabric scans the union
	// across the cohort's subscribers.
	Attrs []string
	// Preds are the query's indexable conjuncts anchored on this table
	// (match.Extract output). Empty means residual: the subscription
	// receives every tuple of the type and relies on its full WHERE.
	Preds []match.Predicate
}

// TableView is one table's routed rows in a delivered batch: a selection
// over the epoch's shared columnar scan batch. The backing batch is shared
// by every subscriber of the device type; the view holds one reference,
// released by Batch.Release.
type TableView struct {
	// Batch is the shared columnar scan of the device type. Read-only.
	Batch *comm.Batch
	// Rows are the batch rows routed to this subscription, ascending; nil
	// means every row.
	Rows []int32
	// Attrs is the subscription's attribute projection for materialized
	// tuples; nil means every batch column.
	Attrs []string
}

// Len returns the number of routed rows.
func (v TableView) Len() int {
	if v.Rows != nil {
		return len(v.Rows)
	}
	if v.Batch == nil {
		return 0
	}
	return v.Batch.Len()
}

// RowIndex maps view position i to its physical batch row.
func (v TableView) RowIndex(i int) int {
	if v.Rows != nil {
		return int(v.Rows[i])
	}
	return i
}

// Row materializes the view's i-th routed row as a Tuple, projected to the
// view's attribute set.
func (v TableView) Row(i int) comm.Tuple {
	r := v.RowIndex(i)
	if v.Attrs == nil {
		return v.Batch.Row(r)
	}
	t := make(comm.Tuple, len(v.Attrs))
	for _, a := range v.Attrs {
		if c := v.Batch.ColByName(a); c != nil {
			t[a] = c.Value(r)
		}
	}
	return t
}

// Tuples materializes every routed row — the row-map compatibility view.
func (v TableView) Tuples() []comm.Tuple {
	out := make([]comm.Tuple, v.Len())
	for i := range out {
		out[i] = v.Row(i)
	}
	return out
}

// Batch is one epoch's delivery to one subscription: a view over each of
// its tables' shared scan batches, restricted to the rows that passed
// predicate routing. The consumer must call Release when done with it —
// the views pin the epoch's pooled scan batches until then.
type Batch struct {
	// Seq is the cohort's tick counter at scan time.
	Seq int64
	// At is the scan time on the fabric clock.
	At time.Time
	// Tables maps the subscription's aliases to their routed views; an
	// alias with no surviving rows is simply absent.
	Tables map[string]TableView
	// Err carries a scan failure for the epoch (unknown catalog or
	// attribute — compile-checked upstream, so effectively never).
	Err error
}

// Release drops the batch's references on the shared scan batches. Call
// exactly once per delivered batch, after the tables are consumed.
func (b *Batch) Release() {
	for _, v := range b.Tables {
		if v.Batch != nil {
			v.Batch.Release()
		}
	}
	b.Tables = nil
}

// Subscription is one query's tap into the fabric.
type Subscription struct {
	// C delivers one Batch per due epoch. The channel is buffered and the
	// fabric never blocks on it: a consumer that falls a full buffer
	// behind misses epochs (counted in the metrics) rather than stalling
	// the scan loop.
	C <-chan Batch

	id   int
	f    *Fabric
	once sync.Once
}

// Close removes the subscription from the fabric. Idempotent, non-blocking,
// and safe during an in-flight epoch: a batch already being assembled for
// this subscription is delivered to the buffered channel and garbage
// collected with it.
func (s *Subscription) Close() {
	s.once.Do(func() { s.f.unsubscribe(s.id) })
}

// subState is the fabric's record of one subscription.
type subState struct {
	id     int
	epoch  time.Duration
	stride int64
	tables []TableSpec
	ch     chan Batch
}

// cohort groups subscriptions with compatible epochs under one scan loop.
type cohort struct {
	base   time.Duration
	subs   map[int]*subState
	cancel context.CancelFunc // non-nil while the loop runs
	seq    atomic.Int64
}

// Fabric is the shared scan fabric. Build with New, wire queries with
// Subscribe, then Start it with the engine's run context; Stop waits for
// every cohort loop to exit.
type Fabric struct {
	clk  vclock.Clock
	scan ScanFunc

	mu      sync.Mutex
	running bool
	ctx     context.Context
	nextID  int
	cohorts map[time.Duration]*cohort
	subs    map[int]*subState
	idx     map[string]*match.Index // device type → predicate index
	wg      sync.WaitGroup

	m fabricCounters
}

// subChanBuf is the per-subscription delivery buffer: enough to ride out a
// slow epoch's evaluation without dropping the next batch.
const subChanBuf = 2

// New builds a fabric over the given clock and scan implementation.
func New(clk vclock.Clock, scan ScanFunc) *Fabric {
	return &Fabric{
		clk:     clk,
		scan:    scan,
		cohorts: make(map[time.Duration]*cohort),
		subs:    make(map[int]*subState),
		idx:     make(map[string]*match.Index),
	}
}

// Subscribe registers a query's table needs at the given epoch and returns
// its tap. Safe before Start: the subscription sits idle until the fabric
// runs.
func (f *Fabric) Subscribe(epoch time.Duration, tables []TableSpec) *Subscription {
	if epoch <= 0 {
		epoch = time.Second
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++
	s := &subState{
		id:     f.nextID,
		epoch:  epoch,
		tables: tables,
		ch:     make(chan Batch, subChanBuf),
	}

	// Epoch alignment: join the largest-base cohort whose base divides the
	// epoch; found a new cohort otherwise. Either way, any coarser cohort
	// whose base the chosen one divides is absorbed, so the cohort set
	// converges to the same shape regardless of subscription order.
	var c *cohort
	for base, cand := range f.cohorts {
		if epoch%base == 0 && (c == nil || base > c.base) {
			c = cand
		}
	}
	if c == nil {
		c = &cohort{base: epoch, subs: make(map[int]*subState)}
		f.cohorts[epoch] = c
		if f.running {
			f.startCohortLocked(c)
		}
	}
	for base, other := range f.cohorts {
		if other == c || base%c.base != 0 {
			continue
		}
		for id, os := range other.subs {
			os.stride = int64(os.epoch / c.base)
			c.subs[id] = os
		}
		if other.cancel != nil {
			other.cancel()
			other.cancel = nil
		}
		delete(f.cohorts, base)
	}
	s.stride = int64(epoch / c.base)
	c.subs[s.id] = s
	f.subs[s.id] = s

	for _, t := range s.tables {
		f.indexLocked(t.DeviceType).Insert(match.Sub{ID: s.id, Tag: t.Alias}, t.Preds)
	}
	return &Subscription{C: s.ch, id: s.id, f: f}
}

// unsubscribe removes a subscription, its predicate-index entries, and —
// when it was the cohort's last member — the cohort itself.
func (f *Fabric) unsubscribe(id int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.subs[id]
	if !ok {
		return
	}
	delete(f.subs, id)
	for _, t := range s.tables {
		if x := f.idx[t.DeviceType]; x != nil {
			x.Remove(match.Sub{ID: s.id, Tag: t.Alias})
			if x.Len() == 0 {
				delete(f.idx, t.DeviceType)
			}
		}
	}
	for base, c := range f.cohorts {
		if _, member := c.subs[id]; !member {
			continue
		}
		delete(c.subs, id)
		if len(c.subs) == 0 {
			if c.cancel != nil {
				c.cancel()
				c.cancel = nil
			}
			delete(f.cohorts, base)
		}
		break
	}
}

// Start launches the cohort loops under ctx. May be called again after
// Stop (the engine's restart path).
func (f *Fabric) Start(ctx context.Context) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.running {
		return
	}
	f.running = true
	f.ctx = ctx
	for _, c := range f.cohorts {
		f.startCohortLocked(c)
	}
}

// Stop halts every cohort loop and waits for in-flight scans to finish.
// Subscriptions survive a Stop; their cohorts resume on the next Start.
func (f *Fabric) Stop() {
	f.mu.Lock()
	if !f.running {
		f.mu.Unlock()
		return
	}
	f.running = false
	for _, c := range f.cohorts {
		if c.cancel != nil {
			c.cancel()
			c.cancel = nil
		}
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// startCohortLocked spawns the cohort's scan loop. Caller holds f.mu.
func (f *Fabric) startCohortLocked(c *cohort) {
	cctx, cancel := context.WithCancel(f.ctx)
	c.cancel = cancel
	f.wg.Add(1)
	go f.runCohort(cctx, c)
}

// runCohort ticks the cohort every base epoch until cancelled. Each tick
// runs under a deadline of one base epoch: a scan wedged on a slow or
// partitioned device is cancelled before it can make the cohort skip
// epochs indefinitely — subscribers see the epoch's error and the next
// epoch starts on time.
func (f *Fabric) runCohort(ctx context.Context, c *cohort) {
	defer f.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case <-f.clk.After(c.base):
		}
		tctx, cancel := vclock.WithTimeout(ctx, f.clk, c.base)
		f.tick(tctx, c)
		cancel()
	}
}

// tick runs one epoch: snapshot the due subscribers, scan each needed
// device type once into a shared columnar batch with the union attribute
// set, route the batch through the predicate index, and fan out retained
// row views without blocking.
func (f *Fabric) tick(ctx context.Context, c *cohort) {
	seq := c.seq.Add(1)

	f.mu.Lock()
	due := make(map[int]*subState)
	needed := make(map[string]map[string]bool) // type → attr union
	demand := make(map[string]int)             // type → due subscriber-tables
	for _, s := range c.subs {
		if seq%s.stride != 0 {
			continue
		}
		due[s.id] = s
		for _, t := range s.tables {
			set := needed[t.DeviceType]
			if set == nil {
				set = make(map[string]bool)
				needed[t.DeviceType] = set
			}
			for _, a := range t.Attrs {
				set[a] = true
			}
			demand[t.DeviceType]++
		}
	}
	indexes := make(map[string]*match.Index, len(needed))
	for dt := range needed {
		indexes[dt] = f.idx[dt]
	}
	f.mu.Unlock()
	if len(due) == 0 {
		return
	}
	f.m.epochs.Add(1)

	now := f.clk.Now()
	batches := make(map[int]*Batch, len(due))
	for id := range due {
		batches[id] = &Batch{Seq: seq, At: now, Tables: make(map[string]TableView)}
	}

	types := make([]string, 0, len(needed))
	for dt := range needed {
		types = append(types, dt)
	}
	sort.Strings(types)
	for _, dt := range types {
		attrs := make([]string, 0, len(needed[dt]))
		for a := range needed[dt] {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)

		scan, err := f.scan(ctx, dt, attrs)
		f.m.typeScans.Add(1)
		f.m.scansCoalesced.Add(int64(demand[dt] - 1))
		if err != nil {
			f.m.scanErrors.Add(1)
			for _, b := range batches {
				if b.Err == nil {
					b.Err = err
				}
			}
			continue
		}
		f.m.deviceScans.Add(int64(scan.Len()))
		idx := indexes[dt]
		if idx == nil {
			scan.Release()
			continue
		}
		for _, sel := range idx.MatchBatch(scan) {
			b, ok := batches[sel.Sub.ID]
			if !ok {
				continue // other cohort, or not due this tick
			}
			view := TableView{Batch: scan, Rows: sel.Rows}
			if s := due[sel.Sub.ID]; s != nil {
				for _, t := range s.tables {
					if t.Alias == sel.Sub.Tag {
						view.Attrs = t.Attrs
						break
					}
				}
			}
			scan.Retain()
			b.Tables[sel.Sub.Tag] = view
			f.m.tuplesFanned.Add(int64(view.Len()))
		}
		scan.Release() // the fabric's own creator reference
	}

	for id, s := range due {
		select {
		case s.ch <- *batches[id]:
			f.m.delivered.Add(1)
		default:
			f.m.dropped.Add(1)
			batches[id].Release() // nobody will consume the views
		}
	}
}

// indexLocked returns the device type's predicate index, creating it on
// first use. Caller holds f.mu.
func (f *Fabric) indexLocked(deviceType string) *match.Index {
	x := f.idx[deviceType]
	if x == nil {
		x = match.NewIndex()
		f.idx[deviceType] = x
	}
	return x
}

// ShareInfo reports how many subscriptions share one (device type, epoch)
// scan, for SHOW SCANS.
type ShareInfo struct {
	DeviceType string        `json:"device_type"`
	Epoch      time.Duration `json:"epoch"`
	Queries    int           `json:"queries"`
	Attrs      []string      `json:"attrs"`
}

// Sharing lists the current scan groups sorted by (device type, epoch):
// each entry is one coalesced device scan and the number of subscriptions
// riding it.
func (f *Fabric) Sharing() []ShareInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []ShareInfo
	for _, c := range f.cohorts {
		byType := make(map[string]*ShareInfo)
		for _, s := range c.subs {
			for _, t := range s.tables {
				si := byType[t.DeviceType]
				if si == nil {
					si = &ShareInfo{DeviceType: t.DeviceType, Epoch: c.base}
					byType[t.DeviceType] = si
				}
				si.Queries++
				si.Attrs = mergeAttrs(si.Attrs, t.Attrs)
			}
		}
		for _, si := range byType {
			out = append(out, *si)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DeviceType != out[j].DeviceType {
			return out[i].DeviceType < out[j].DeviceType
		}
		return out[i].Epoch < out[j].Epoch
	})
	return out
}

// mergeAttrs unions two sorted-or-not attr slices into a sorted slice.
func mergeAttrs(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
