package scanshare

import "sync/atomic"

// fabricCounters are the fabric's hot-path counters. All atomic: ticks from
// different cohorts update them concurrently.
type fabricCounters struct {
	epochs         atomic.Int64
	typeScans      atomic.Int64
	deviceScans    atomic.Int64
	scansCoalesced atomic.Int64
	tuplesFanned   atomic.Int64
	delivered      atomic.Int64
	dropped        atomic.Int64
	scanErrors     atomic.Int64
}

// MetricsSnapshot is a point-in-time view of the fabric, including the
// aggregated predicate-index counters across device types.
type MetricsSnapshot struct {
	// Cohorts and Subscribers describe the current fabric shape.
	Cohorts     int `json:"cohorts"`
	Subscribers int `json:"subscribers"`

	// Epochs counts ticks that had at least one due subscription;
	// TypeScans the coalesced device-type scans those ticks issued;
	// DeviceScans the tuples (≈ devices) those scans returned.
	Epochs      int64 `json:"epochs"`
	TypeScans   int64 `json:"type_scans"`
	DeviceScans int64 `json:"device_scans"`

	// ScansCoalesced counts scans that sharing avoided: for each (type,
	// tick) with k due subscriber-tables, k−1 scans were saved.
	ScansCoalesced int64 `json:"scans_coalesced"`

	// TuplesFanned counts tuple deliveries into per-query batches;
	// BatchesDelivered / BatchesDropped split batch handoffs by whether
	// the subscriber's buffer had room.
	TuplesFanned     int64 `json:"tuples_fanned"`
	BatchesDelivered int64 `json:"batches_delivered"`
	BatchesDropped   int64 `json:"batches_dropped"`
	ScanErrors       int64 `json:"scan_errors"`

	// IndexProbes / IndexHits / ResidualHits aggregate the per-type
	// predicate indexes: probes are routed tuples, hits are
	// index-qualified deliveries, residual hits went to subscriptions
	// with no indexable predicates.
	IndexProbes  int64 `json:"index_probes"`
	IndexHits    int64 `json:"index_hits"`
	ResidualHits int64 `json:"residual_hits"`
}

// Metrics captures the current counters.
func (f *Fabric) Metrics() MetricsSnapshot {
	snap := MetricsSnapshot{
		Epochs:           f.m.epochs.Load(),
		TypeScans:        f.m.typeScans.Load(),
		DeviceScans:      f.m.deviceScans.Load(),
		ScansCoalesced:   f.m.scansCoalesced.Load(),
		TuplesFanned:     f.m.tuplesFanned.Load(),
		BatchesDelivered: f.m.delivered.Load(),
		BatchesDropped:   f.m.dropped.Load(),
		ScanErrors:       f.m.scanErrors.Load(),
	}
	f.mu.Lock()
	snap.Cohorts = len(f.cohorts)
	snap.Subscribers = len(f.subs)
	for _, x := range f.idx {
		st := x.Stats()
		snap.IndexProbes += st.Probes
		snap.IndexHits += st.Hits
		snap.ResidualHits += st.ResidualHits
	}
	f.mu.Unlock()
	return snap
}
