// Package lab builds the paper's §6 "pervasive lab" testbed in
// simulation: a floor plan with ceiling-mounted PTZ cameras, MICA2-like
// motes at places of interest, MMS phones, an in-memory device network
// with fault injection, and an Aorta engine wired to all of it.
//
// The default layout mirrors the paper's setup: two cameras on the
// ceiling, ten motes placed so each is in the view range of at least one
// camera, running against a scaled clock so a "10-minute" empirical study
// finishes in seconds.
package lab

import (
	"fmt"
	"sync"
	"time"

	"aorta/internal/comm"
	"aorta/internal/core"
	"aorta/internal/device"
	"aorta/internal/device/camera"
	"aorta/internal/device/mote"
	"aorta/internal/device/phone"
	"aorta/internal/geo"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
)

// Room dimensions in metres.
const (
	RoomWidth    = 14.0
	RoomDepth    = 8.0
	CeilingZ     = 3.0
	DefaultScale = 100.0
)

// Config sizes the lab. Zero values select the paper's defaults.
type Config struct {
	// Cameras is the PTZ camera count (default 2).
	Cameras int
	// Motes is the sensor count (default 10).
	Motes int
	// Phones is the phone count (default 1).
	Phones int
	// ClockScale speeds up virtual time (default 100×).
	ClockScale float64
	// Seed drives network fault randomness.
	Seed int64
	// CameraLink is the fault configuration applied to every camera link
	// (e.g. DialFailProb to model flaky connections).
	CameraLink netsim.LinkConfig
	// Engine overrides engine options; Clock, Dialer and Registry are set
	// by the lab.
	Engine core.Config
}

// Lab is a running simulated testbed.
type Lab struct {
	Clock   *vclock.Scaled
	Network *netsim.Network
	Engine  *core.Engine
	Cameras []*camera.Camera
	Motes   []*mote.Mote
	Phones  []*phone.Phone

	mu      sync.Mutex
	servers map[string]*device.Server
	models  map[string]device.Model
}

// New builds and wires the lab. Call Close when done.
func New(cfg Config) (*Lab, error) {
	if cfg.Cameras <= 0 {
		cfg.Cameras = 2
	}
	if cfg.Motes <= 0 {
		cfg.Motes = 10
	}
	if cfg.Phones < 0 {
		cfg.Phones = 0
	} else if cfg.Phones == 0 {
		cfg.Phones = 1
	}
	if cfg.ClockScale <= 0 {
		cfg.ClockScale = DefaultScale
	}

	clk := vclock.NewScaled(cfg.ClockScale)
	network := netsim.NewNetwork(clk, cfg.Seed)

	ecfg := cfg.Engine
	ecfg.Clock = clk
	ecfg.Dialer = network
	engine, err := core.New(ecfg)
	if err != nil {
		return nil, err
	}

	l := &Lab{
		Clock:   clk,
		Network: network,
		Engine:  engine,
		servers: make(map[string]*device.Server),
		models:  make(map[string]device.Model),
	}

	serve := func(id string, m device.Model) error {
		lis, err := network.Listen(id)
		if err != nil {
			return err
		}
		l.servers[id] = device.Serve(lis, m)
		l.models[id] = m
		return nil
	}

	// Cameras along the long walls, facing the room.
	for i := 0; i < cfg.Cameras; i++ {
		id := fmt.Sprintf("camera-%d", i+1)
		mount := cameraMount(i, cfg.Cameras)
		cam := camera.New(id, mount, clk)
		l.Cameras = append(l.Cameras, cam)
		if err := serve(id, cam); err != nil {
			return nil, err
		}
		if err := engine.RegisterDevice(comm.DeviceInfo{
			ID: id, Type: profile.DeviceCamera, Addr: id,
		}, mount); err != nil {
			return nil, err
		}
		network.SetLink(id, cfg.CameraLink)
	}

	// Motes at places of interest; each within range of a camera.
	for i := 0; i < cfg.Motes; i++ {
		id := fmt.Sprintf("mote-%d", i+1)
		loc := moteLocation(i, cfg.Motes)
		m := mote.New(id, loc, clk, mote.Config{Depth: 1 + i%3, Seed: cfg.Seed + int64(i)})
		l.Motes = append(l.Motes, m)
		if err := serve(id, m); err != nil {
			return nil, err
		}
		if err := engine.RegisterDevice(comm.DeviceInfo{
			ID: id, Type: profile.DeviceSensor, Addr: id,
			Static: map[string]any{"loc": loc, "depth": 1 + i%3},
		}, geo.Mount{}); err != nil {
			return nil, err
		}
	}

	// Phones.
	for i := 0; i < cfg.Phones; i++ {
		id := fmt.Sprintf("phone-%d", i+1)
		number := fmt.Sprintf("+8525550%02d", i+1)
		p := phone.New(id, number, fmt.Sprintf("manager-%d", i+1), clk)
		l.Phones = append(l.Phones, p)
		if err := serve(id, p); err != nil {
			return nil, err
		}
		if err := engine.RegisterDevice(comm.DeviceInfo{
			ID: id, Type: profile.DevicePhone, Addr: id,
			Static: map[string]any{"number": number, "owner": fmt.Sprintf("manager-%d", i+1)},
		}, geo.Mount{}); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// NewEngine replaces the lab's engine with a fresh one built from ecfg;
// Clock and Dialer are set to the lab's own, and no devices are
// registered. The crash-recovery study uses it to restart an engine over
// the same simulated device farm: the device servers keep listening
// across engine lives, and the new engine's catalog comes from its
// journal, not from re-registration.
func (l *Lab) NewEngine(ecfg core.Config) (*core.Engine, error) {
	ecfg.Clock = l.Clock
	ecfg.Dialer = l.Network
	engine, err := core.New(ecfg)
	if err != nil {
		return nil, err
	}
	l.Engine = engine
	return engine, nil
}

// Close shuts down the engine and every device server.
func (l *Lab) Close() {
	l.Engine.Stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.servers {
		_ = s.Close()
	}
	l.servers = nil
}

// Kill crashes device id: its server stops and its link goes down, so
// every in-flight and future connection fails. The device stays in the
// engine's registry — from the engine's point of view it failed, it did
// not leave. The churn study's fault injector.
func (l *Lab) Kill(id string) {
	l.mu.Lock()
	if s, ok := l.servers[id]; ok {
		_ = s.Close()
		delete(l.servers, id)
	}
	l.mu.Unlock()
	l.Network.SetLink(id, netsim.LinkConfig{Down: true})
}

// Revive restarts a killed device: the link comes back up and the
// device's model is served again on its old address. Returns false for an
// unknown or still-running device.
func (l *Lab) Revive(id string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	m, ok := l.models[id]
	if !ok {
		return false
	}
	if _, running := l.servers[id]; running {
		return false
	}
	l.Network.SetLink(id, netsim.LinkConfig{})
	lis, err := l.Network.Listen(id)
	if err != nil {
		return false
	}
	l.servers[id] = device.Serve(lis, m)
	return true
}

// cameraMount places camera i of n alternating along the two short walls,
// facing into the room.
func cameraMount(i, n int) geo.Mount {
	var pos geo.Point
	var forward float64
	if n == 1 {
		return geo.DefaultMount(geo.Point{X: 0, Y: RoomDepth / 2, Z: CeilingZ}, 0)
	}
	side := i % 2
	step := RoomDepth / float64((n+1)/2+1)
	row := float64(i/2+1) * step
	if side == 0 {
		pos = geo.Point{X: 0, Y: row, Z: CeilingZ}
		forward = 0 // facing +X
	} else {
		pos = geo.Point{X: RoomWidth, Y: row, Z: CeilingZ}
		forward = 180 // facing -X
	}
	return geo.DefaultMount(pos, forward)
}

// moteLocation spreads motes on a grid across the room floor.
func moteLocation(i, n int) geo.Point {
	cols := 5
	if n < cols {
		cols = n
	}
	rows := (n + cols - 1) / cols
	col := i % cols
	row := i / cols
	x := RoomWidth * float64(col+1) / float64(cols+1)
	y := RoomDepth * float64(row+1) / float64(rows+1)
	return geo.Point{X: x, Y: y, Z: 0}
}

// StimulateMote injects a physical event at mote index i: the
// accelerometer x-axis reads magnitude for dur of virtual time. It
// reports whether i names a mote; an out-of-range index is a no-op and
// returns false so callers cannot mistake it for a delivered stimulus.
func (l *Lab) StimulateMote(i int, magnitude float64, dur time.Duration) bool {
	if i < 0 || i >= len(l.Motes) {
		return false
	}
	l.Motes[i].Stimulate("x", magnitude, dur)
	return true
}

// CoveredBy returns the IDs of cameras whose envelope covers mote i's
// location.
func (l *Lab) CoveredBy(i int) []string {
	if i < 0 || i >= len(l.Motes) {
		return nil
	}
	loc := l.Motes[i].Location()
	var out []string
	for _, cam := range l.Cameras {
		if cam.Mount().Covers(loc) {
			out = append(out, cam.ID())
		}
	}
	return out
}
