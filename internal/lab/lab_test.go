package lab

import (
	"context"
	"testing"
	"time"
)

func TestDefaultLabLayout(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(l.Cameras) != 2 || len(l.Motes) != 10 || len(l.Phones) != 1 {
		t.Fatalf("layout = %d cameras, %d motes, %d phones", len(l.Cameras), len(l.Motes), len(l.Phones))
	}
	// The paper's constraint: every mote is in the view range of at least
	// one camera.
	for i := range l.Motes {
		if len(l.CoveredBy(i)) == 0 {
			t.Errorf("mote %d at %v covered by no camera", i+1, l.Motes[i].Location())
		}
	}
}

func TestLargerLabCoverage(t *testing.T) {
	l, err := New(Config{Cameras: 6, Motes: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := range l.Motes {
		if len(l.CoveredBy(i)) == 0 {
			t.Errorf("mote %d covered by no camera", i+1)
		}
	}
}

func TestDevicesRegisteredAndReachable(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx := context.Background()
	for _, id := range []string{"camera-1", "camera-2", "mote-1", "mote-10", "phone-1"} {
		if _, err := l.Engine.Layer().Probe(ctx, id); err != nil {
			t.Errorf("probe %s: %v", id, err)
		}
	}
}

func TestStimulateMoteVisibleThroughScan(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.StimulateMote(3, 900, time.Hour)
	tuples, _, err := l.Engine.Layer().Scan(context.Background(), "sensor", []string{"accel_x"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tu := range tuples {
		if tu["id"] == "mote-4" {
			if tu["accel_x"].(float64) > 500 {
				found = true
			}
		} else if v, ok := tu["accel_x"].(float64); ok && v > 500 {
			t.Errorf("unstimulated mote %v reads %v", tu["id"], v)
		}
	}
	if !found {
		t.Error("stimulated mote-4 does not read > 500")
	}
}

func TestAdHocQueryOverLab(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	res, err := l.Engine.Exec(context.Background(), `SELECT s.temp FROM sensor s WHERE s.temp > -100`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "rows" || len(res.Rows) != 10 {
		t.Fatalf("result = %s with %d rows, want 10", res.Kind, len(res.Rows))
	}
}
