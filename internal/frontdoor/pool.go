package frontdoor

import (
	"sync"
	"sync/atomic"
)

// pool is the shared bounded worker pool behind every session. One pool
// serves the whole daemon: it is the single concurrency bound on
// statement execution, so 100k idle connections cost goroutines but not
// engine pressure, and a burst on one connection cannot fan out into an
// unbounded goroutine burst.
type pool struct {
	jobs chan func()
	wg   sync.WaitGroup
	// adhocMax is the queue occupancy at which ad-hoc statements are
	// shed; the slots above it are the management reserve.
	adhocMax int
	inflight atomic.Int64
	// onPanic observes a panic that escaped a job into the worker loop —
	// the last containment boundary before a shared worker (and with it
	// the whole pool, eventually) would die. Set by New; never nil.
	onPanic func(v any)

	mu     sync.Mutex
	closed bool
}

func newPool(workers, queue, adhocReserve int, onPanic func(v any)) *pool {
	if onPanic == nil {
		onPanic = func(any) {}
	}
	p := &pool{
		jobs:     make(chan func(), queue),
		adhocMax: queue - adhocReserve,
		onPanic:  onPanic,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		p.inflight.Add(1)
		p.run(job)
		p.inflight.Add(-1)
	}
}

// run executes one job behind the pool's recover backstop: statement
// execution has its own boundary in the session, so anything reaching
// here is a bug in the session plumbing itself — contain it and keep the
// worker alive rather than leaking a pool slot forever.
func (p *pool) run(job func()) {
	defer func() {
		if v := recover(); v != nil {
			p.onPanic(v)
		}
	}()
	job()
}

// submit enqueues a management/control job, blocking while the queue is
// full. The ad-hoc reserve guarantees shed ad-hoc traffic cannot keep
// this wait unbounded.
func (p *pool) submit(job func()) {
	p.jobs <- job
}

// trySubmitAdHoc enqueues an ad-hoc job unless the queue has reached
// the ad-hoc share; false means the statement must be shed. The
// occupancy check is approximate under concurrency, which only ever
// sheds slightly early or late — never blocks.
func (p *pool) trySubmitAdHoc(job func()) bool {
	if len(p.jobs) >= p.adhocMax {
		return false
	}
	select {
	case p.jobs <- job:
		return true
	default:
		return false
	}
}

// close drains queued jobs and stops the workers. Callers must
// guarantee no concurrent submit — the daemon does so by closing every
// session first.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
