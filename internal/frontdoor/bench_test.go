package frontdoor

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"
)

// BenchmarkFrontdoorWindow measures what the pipelined protocol buys on
// one connection when statement service time dominates: before issues
// bare lines one at a time (each statement waits for the previous
// response), after keeps a window of tagged statements in flight so
// their service times overlap in the shared pool. The synthetic
// executor sleeps a fixed service time, standing in for engine work.
func BenchmarkFrontdoorWindow(b *testing.B) {
	const (
		service = 200 * time.Microsecond
		window  = 16
	)
	run := func(b *testing.B, window int, tagged bool) {
		d := New(Config{Workers: window, Window: window})
		defer d.Close()
		client, server := net.Pipe()
		defer client.Close()
		done := make(chan struct{})
		go func() {
			defer close(done)
			d.Serve(context.Background(), server, func(ctx context.Context, id, stmt string) any {
				time.Sleep(service)
				return ErrorResponse{ID: id, OK: true}
			})
		}()
		defer func() { client.Close(); <-done }()

		dec := json.NewDecoder(client)
		recv := func() {
			var f ErrorResponse
			if err := dec.Decode(&f); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		inFlight := 0
		for i := 0; i < b.N; i++ {
			for inFlight >= window {
				recv()
				inFlight--
			}
			line := "SELECT 1\n"
			if tagged {
				line = fmt.Sprintf("#s%d SELECT 1\n", i)
			}
			if _, err := client.Write([]byte(line)); err != nil {
				b.Fatal(err)
			}
			inFlight++
		}
		for inFlight > 0 {
			recv()
			inFlight--
		}
	}

	b.Run("before", func(b *testing.B) { run(b, 1, false) })
	b.Run("after", func(b *testing.B) { run(b, window, true) })
}
