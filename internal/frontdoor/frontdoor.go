// Package frontdoor implements the daemon's concurrent client path: a
// pipelined line protocol with optional request tags, a shared bounded
// worker pool, and admission control that protects continuous-query
// management from ad-hoc query floods.
//
// # Protocol
//
// The wire format stays one statement per line, one JSON response per
// line. A line may carry an optional request tag:
//
//	#<id> <statement>
//
// Tagged statements execute concurrently (bounded by the per-connection
// in-flight window) and their responses, which carry the same id, may
// arrive in any order. Bare lines keep the legacy in-order semantics:
// each executes to completion before the next line is read, and its
// response is the next frame on the wire. Existing clients that never
// send tags observe exactly the pre-pipelining protocol.
//
// # Admission
//
// Statements are classified before execution: backslash commands are
// control (executed inline, never queued, so \metrics works even under
// overload), SELECT/EXPLAIN are ad-hoc, and everything else — the
// continuous-query catalog traffic — is management. All SQL execution
// flows through one shared worker pool; ad-hoc statements are admitted
// only while the pool queue has headroom beyond a reserve kept for
// management, and are otherwise rejected immediately with a typed
// "overloaded" error. A per-connection token bucket additionally rate
// limits ad-hoc statements when configured. Management statements are
// never shed; at worst they exert backpressure on their own connection.
package frontdoor

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"aorta/internal/vclock"
)

// Exec executes one statement and returns the value to encode as its
// JSON response frame. id is the client's request tag ("" for bare
// lines); implementations must echo it in the response so clients can
// match out-of-order replies.
type Exec func(ctx context.Context, id, stmt string) any

// Error codes carried by frames the front door emits itself.
const (
	// CodeOverloaded rejects an ad-hoc statement because the shared pool
	// has no ad-hoc headroom left.
	CodeOverloaded = "overloaded"
	// CodeRateLimited rejects an ad-hoc statement that exceeded the
	// connection's token bucket.
	CodeRateLimited = "rate_limited"
	// CodeTooLong reports a statement over the line-length limit; the
	// connection closes after this frame because the stream position is
	// lost.
	CodeTooLong = "statement_too_long"
	// CodePanic reports a statement whose execution panicked and was
	// contained at the session's recover() boundary: the statement failed
	// but the daemon and the connection live on.
	CodePanic = "panic"

	// The remaining protocol codes are emitted by the statement handler
	// (the daemon), not the door itself; they are declared here so client
	// and server share one vocabulary. See DESIGN.md "Failure taxonomy".

	// CodeDeadlineExceeded reports a statement cancelled by the
	// per-statement deadline (Config.StmtTimeout / aortad -stmt-timeout).
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeDegraded rejects a mutating statement while the engine is in
	// journal-degraded (read-only) mode.
	CodeDegraded = "degraded"
	// CodeQuarantined rejects START AQ for a query auto-stopped after
	// repeated evaluation panics.
	CodeQuarantined = "quarantined"
	// CodePartial reports a fanned-out statement that succeeded on some
	// cluster shards and failed on others; the response carries the
	// per-shard codes so the client sees exactly which shards diverged.
	CodePartial = "partial"
	// CodeUnreachable reports a shard that could not be contacted at the
	// transport level: dial refused, connection lost mid-statement, or
	// shed in microseconds by the router's dial backoff / circuit
	// breaker while the shard is down.
	CodeUnreachable = "unreachable"
	// CodeDraining rejects a new placement (CREATE AQ / CREATE ACTION)
	// on an engine that is cooperatively draining: in-flight work is
	// flushing and its state is about to hand off to surviving shards.
	CodeDraining = "draining"
)

// ErrorResponse is the error frame the front door emits without
// consulting the statement handler. Its shape matches the daemon's
// response frame so clients need only one decoder.
type ErrorResponse struct {
	ID    string `json:"id,omitempty"`
	OK    bool   `json:"ok"`
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Class is a statement's admission class.
type Class int

const (
	// ClassControl is a backslash command: executed inline, never queued.
	ClassControl Class = iota
	// ClassManagement is catalog traffic (CREATE/DROP/STOP/START/SHOW…):
	// pooled but never shed.
	ClassManagement
	// ClassAdHoc is a one-shot SELECT or EXPLAIN: rate limited and shed
	// before it can starve management.
	ClassAdHoc
)

// Classify assigns stmt its admission class.
func Classify(stmt string) Class {
	if strings.HasPrefix(stmt, "\\") {
		return ClassControl
	}
	kw := stmt
	if i := strings.IndexAny(kw, " \t"); i >= 0 {
		kw = kw[:i]
	}
	switch strings.ToUpper(kw) {
	case "SELECT", "EXPLAIN":
		return ClassAdHoc
	}
	return ClassManagement
}

// SplitTag splits an optional "#<id> " request tag off a protocol line.
// Lines not starting with "#" (every legal SQL statement and backslash
// command) are returned unchanged with tagged=false.
func SplitTag(line string) (id, stmt string, tagged bool) {
	rest, ok := strings.CutPrefix(line, "#")
	if !ok {
		return "", line, false
	}
	i := strings.IndexAny(rest, " \t")
	if i < 0 {
		if rest == "" {
			return "", line, false
		}
		return rest, "", true
	}
	if rest[:i] == "" {
		return "", line, false
	}
	return rest[:i], strings.TrimSpace(rest[i+1:]), true
}

// Config sizes one front door.
type Config struct {
	// Workers is the shared pool size (default 2×GOMAXPROCS).
	Workers int
	// Queue is the pool's pending-statement capacity (default 256).
	Queue int
	// AdHocReserve is how many queue slots are held back from ad-hoc
	// statements so management always has room (default Queue/4).
	AdHocReserve int
	// Window bounds concurrently executing tagged statements per
	// connection; the reader blocks once it is full (default 32).
	Window int
	// AdHocPerSec rate-limits ad-hoc statements per connection via a
	// token bucket; 0 disables.
	AdHocPerSec float64
	// AdHocBurst is the bucket depth (default max(1, AdHocPerSec)).
	AdHocBurst float64
	// MaxLine is the statement byte limit (default 1 MiB). A longer line
	// gets a typed error frame before the connection closes.
	MaxLine int
	// StmtTimeout bounds each statement's execution with a context
	// deadline on Clock; the deadline propagates through the handler into
	// the engine, comm layer and device sessions, so a statement wedged
	// on a partitioned device releases its pool worker instead of holding
	// it forever. 0 disables.
	StmtTimeout time.Duration
	// Clock feeds the rate limiter; tests use vclock.Manual.
	Clock vclock.Clock
	// Logger, when set, records read errors and shed decisions.
	Logger *slog.Logger
}

// Door is a running front door: one shared pool serving every
// connection's sessions.
type Door struct {
	cfg  Config
	pool *pool
	m    metrics
}

// New builds a Door. Call Close after every Serve call has returned.
func New(cfg Config) *Door {
	if cfg.Workers <= 0 {
		cfg.Workers = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	if cfg.AdHocReserve <= 0 || cfg.AdHocReserve >= cfg.Queue {
		cfg.AdHocReserve = cfg.Queue / 4
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.AdHocBurst < 1 {
		cfg.AdHocBurst = max(1, cfg.AdHocPerSec)
	}
	if cfg.MaxLine <= 0 {
		cfg.MaxLine = 1 << 20
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	d := &Door{cfg: cfg}
	d.pool = newPool(cfg.Workers, cfg.Queue, cfg.AdHocReserve, func(v any) {
		d.m.panics.Add(1)
		if cfg.Logger != nil {
			cfg.Logger.Error("frontdoor: panic contained in pool worker",
				"panic", v, "stack", string(debug.Stack()))
		}
	})
	return d
}

// Close stops the pool after draining queued statements. Serve must not
// be running.
func (d *Door) Close() { d.pool.close() }

// Metrics snapshots the door's counters and pool gauges.
func (d *Door) Metrics() MetricsSnapshot {
	s := d.m.snapshot()
	s.Queued = int64(len(d.pool.jobs))
	s.InFlight = d.pool.inflight.Load()
	s.Workers = d.cfg.Workers
	s.Window = d.cfg.Window
	return s
}

// Serve runs the line protocol on conn until the client disconnects,
// sends \quit, or oversteps the line limit. It blocks; run it from the
// per-connection goroutine. conn is closed on return.
func (d *Door) Serve(ctx context.Context, conn net.Conn, exec Exec) {
	defer conn.Close()
	d.m.sessions.Add(1)
	d.m.active.Add(1)
	defer d.m.active.Add(-1)

	s := &session{
		door:     d,
		conn:     conn,
		exec:     exec,
		window:   make(chan struct{}, d.cfg.Window),
		maxQueue: 2*d.cfg.Window + 64,
	}
	s.cond = sync.NewCond(&s.mu)
	if d.cfg.AdHocPerSec > 0 {
		s.limiter = NewLimiter(d.cfg.Clock, d.cfg.AdHocPerSec, d.cfg.AdHocBurst)
	}
	writerDone := make(chan struct{})
	go s.writer(writerDone)

	sc := bufio.NewScanner(conn)
	// The scanner's effective limit is max(cap(buf), MaxLine), so the
	// initial buffer must not exceed MaxLine or small limits are ignored.
	sc.Buffer(make([]byte, 0, min(64*1024, d.cfg.MaxLine)), d.cfg.MaxLine)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		id, stmt, tagged := SplitTag(line)
		if stmt == "\\quit" {
			break
		}
		if tagged && stmt == "" {
			s.push(&ErrorResponse{ID: id, Error: "empty statement"})
			continue
		}
		if tagged {
			s.tagged(ctx, id, stmt)
		} else {
			s.untagged(ctx, stmt)
		}
	}
	// The scan loop ends for exactly three reasons: clean EOF/\quit, a
	// statement over the line limit, or a transport error. The latter two
	// used to be silently swallowed.
	switch err := sc.Err(); {
	case err == nil:
	case errors.Is(err, bufio.ErrTooLong):
		d.m.oversized.Add(1)
		s.push(&ErrorResponse{
			Error: fmt.Sprintf("statement exceeds %d-byte line limit", d.cfg.MaxLine),
			Code:  CodeTooLong,
		})
	default:
		d.m.readErrors.Add(1)
		if d.cfg.Logger != nil {
			d.cfg.Logger.Warn("frontdoor: client read error", "remote", conn.RemoteAddr(), "err", err)
		}
	}
	s.jobs.Wait() // drain in-flight tagged statements; their frames still flush
	s.closeOut()
	<-writerDone
}

// session is one connection's state: the in-flight window and the
// serialized response writer.
type session struct {
	door    *Door
	conn    net.Conn
	exec    Exec
	limiter *Limiter
	// window is the tagged in-flight semaphore; acquiring it in the read
	// loop converts window overflow into reader backpressure.
	window chan struct{}
	// jobs tracks pooled statements so Serve can drain before closing.
	jobs sync.WaitGroup

	// The response queue. Workers push frames here and never block on the
	// client's socket; the writer goroutine drains it in push order so
	// concurrent encoders cannot interleave JSON.
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []any
	maxQueue int
	closed   bool // no more frames coming; writer exits once drained
	dead     bool // writer failed or client too slow; drop frames
}

// push enqueues one response frame. A client that stops reading while
// statements keep completing would grow the queue without bound, so past
// maxQueue the connection is killed instead — workers must never block
// on a slow consumer.
func (s *session) push(v any) {
	s.mu.Lock()
	if s.dead || s.closed {
		s.mu.Unlock()
		return
	}
	if len(s.queue) >= s.maxQueue {
		s.dead = true
		s.mu.Unlock()
		s.door.m.slowClients.Add(1)
		s.conn.Close()
		s.cond.Signal()
		return
	}
	s.queue = append(s.queue, v)
	s.mu.Unlock()
	s.cond.Signal()
}

// closeOut marks the queue complete; the writer exits after flushing.
func (s *session) closeOut() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// writer is the connection's single encoder goroutine.
func (s *session) writer(done chan<- struct{}) {
	defer close(done)
	enc := json.NewEncoder(s.conn)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed && !s.dead {
			s.cond.Wait()
		}
		if s.dead || (s.closed && len(s.queue) == 0) {
			s.mu.Unlock()
			return
		}
		v := s.queue[0]
		s.queue[0] = nil
		s.queue = s.queue[1:]
		s.mu.Unlock()
		if err := enc.Encode(v); err != nil {
			s.mu.Lock()
			s.dead = true
			s.mu.Unlock()
			return
		}
	}
}

// admit applies ad-hoc admission (rate limit) for one statement,
// pushing the rejection frame itself. Control and management always
// pass.
func (s *session) admit(class Class, id string) bool {
	if class != ClassAdHoc {
		return true
	}
	if !s.limiter.Allow() {
		s.door.m.rateLimited.Add(1)
		s.push(&ErrorResponse{
			ID:    id,
			Error: "ad-hoc statement rate limit exceeded for this connection",
			Code:  CodeRateLimited,
		})
		return false
	}
	return true
}

// runExec executes one statement through the handler behind the
// session's fault boundaries: a per-statement deadline (Config.
// StmtTimeout) that the handler propagates all the way to device
// sessions, and a recover() boundary that converts a panicking handler
// into a typed error frame — the connection and the daemon survive a
// statement that would otherwise unwind a worker or the read loop.
func (s *session) runExec(ctx context.Context, id, stmt string) (resp any) {
	d := s.door
	defer func() {
		if v := recover(); v != nil {
			d.m.panics.Add(1)
			if d.cfg.Logger != nil {
				d.cfg.Logger.Error("frontdoor: panic contained in statement execution",
					"stmt", stmt, "panic", v, "stack", string(debug.Stack()))
			}
			resp = &ErrorResponse{
				ID:    id,
				Error: fmt.Sprintf("internal error: statement execution panicked: %v", v),
				Code:  CodePanic,
			}
		}
	}()
	if d.cfg.StmtTimeout > 0 {
		tctx, cancel := vclock.WithTimeout(ctx, d.cfg.Clock, d.cfg.StmtTimeout)
		defer cancel()
		ctx = tctx
	}
	return s.exec(ctx, id, stmt)
}

// untagged runs one bare line with legacy in-order semantics: through
// the shared pool (so admission applies uniformly), but the read loop
// waits for completion before consuming the next line.
func (s *session) untagged(ctx context.Context, stmt string) {
	d := s.door
	class := Classify(stmt)
	if class == ClassControl {
		d.m.untagged.Add(1)
		s.push(s.runExec(ctx, "", stmt))
		return
	}
	if !s.admit(class, "") {
		return
	}
	done := make(chan struct{})
	job := func() {
		defer close(done)
		s.push(s.runExec(ctx, "", stmt))
	}
	if class == ClassAdHoc {
		if !d.pool.trySubmitAdHoc(job) {
			d.m.shed.Add(1)
			s.push(&ErrorResponse{
				Error: "overloaded: ad-hoc statement shed, retry later",
				Code:  CodeOverloaded,
			})
			return
		}
	} else {
		d.pool.submit(job)
	}
	d.m.untagged.Add(1)
	<-done
}

// tagged dispatches one tagged statement into the pool, bounded by the
// connection's in-flight window.
func (s *session) tagged(ctx context.Context, id, stmt string) {
	d := s.door
	class := Classify(stmt)
	if class == ClassControl {
		d.m.tagged.Add(1)
		s.push(s.runExec(ctx, id, stmt))
		return
	}
	if !s.admit(class, id) {
		return
	}
	s.window <- struct{}{} // blocks at Window in flight: reader backpressure
	s.jobs.Add(1)
	job := func() {
		defer s.jobs.Done()
		defer func() { <-s.window }()
		s.push(s.runExec(ctx, id, stmt))
	}
	if class == ClassAdHoc {
		if !d.pool.trySubmitAdHoc(job) {
			s.jobs.Done()
			<-s.window
			d.m.shed.Add(1)
			s.push(&ErrorResponse{
				ID:    id,
				Error: "overloaded: ad-hoc statement shed, retry later",
				Code:  CodeOverloaded,
			})
			return
		}
	} else {
		d.pool.submit(job)
	}
	d.m.tagged.Add(1)
}
