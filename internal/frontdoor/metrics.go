package frontdoor

import "sync/atomic"

// metrics is the door's internal counter set.
type metrics struct {
	sessions    atomic.Int64
	active      atomic.Int64
	tagged      atomic.Int64
	untagged    atomic.Int64
	shed        atomic.Int64
	rateLimited atomic.Int64
	oversized   atomic.Int64
	readErrors  atomic.Int64
	slowClients atomic.Int64
	panics      atomic.Int64
}

// MetricsSnapshot is the front door's externally visible state, carried
// on the daemon's \metrics frame.
type MetricsSnapshot struct {
	// Sessions counts connections ever served; ActiveSessions is the
	// current gauge.
	Sessions       int64 `json:"sessions"`
	ActiveSessions int64 `json:"active_sessions"`
	// Tagged/Untagged count admitted statements by framing.
	Tagged   int64 `json:"tagged_statements"`
	Untagged int64 `json:"untagged_statements"`
	// Shed counts ad-hoc statements rejected with CodeOverloaded;
	// RateLimited those rejected by a connection's token bucket.
	Shed        int64 `json:"shed"`
	RateLimited int64 `json:"rate_limited"`
	// Oversized counts statements over the line limit; ReadErrors other
	// transport read failures; SlowClients connections killed because
	// their response queue overflowed.
	Oversized   int64 `json:"oversized_statements"`
	ReadErrors  int64 `json:"read_errors"`
	SlowClients int64 `json:"slow_clients"`
	// Panics counts statements whose execution panicked and was contained
	// at the session or pool recover() boundary.
	Panics int64 `json:"panics"`
	// Queued and InFlight are the shared pool's gauges at snapshot time.
	Queued   int64 `json:"queued"`
	InFlight int64 `json:"in_flight"`
	// Workers and Window echo the door's configuration.
	Workers int `json:"workers"`
	Window  int `json:"window"`
}

func (m *metrics) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Sessions:       m.sessions.Load(),
		ActiveSessions: m.active.Load(),
		Tagged:         m.tagged.Load(),
		Untagged:       m.untagged.Load(),
		Shed:           m.shed.Load(),
		RateLimited:    m.rateLimited.Load(),
		Oversized:      m.oversized.Load(),
		ReadErrors:     m.readErrors.Load(),
		SlowClients:    m.slowClients.Load(),
		Panics:         m.panics.Load(),
	}
}
