package frontdoor

import (
	"sync"
	"time"

	"aorta/internal/vclock"
)

// Limiter is a token bucket on a virtual clock: perSec tokens accrue up
// to burst, one statement spends one token. Reading time through
// vclock.Clock keeps admission tests deterministic (vclock.Manual) and
// lets scaled-clock studies rate-limit in virtual time.
type Limiter struct {
	clk vclock.Clock

	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// NewLimiter returns a full bucket. perSec <= 0 disables the limiter
// (Allow always true).
func NewLimiter(clk vclock.Clock, perSec, burst float64) *Limiter {
	if burst < 1 {
		burst = 1
	}
	return &Limiter{clk: clk, rate: perSec, burst: burst, tokens: burst, last: clk.Now()}
}

// Allow spends one token if available. A nil limiter admits everything.
func (l *Limiter) Allow() bool {
	if l == nil || l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clk.Now()
	l.tokens = min(l.burst, l.tokens+now.Sub(l.last).Seconds()*l.rate)
	l.last = now
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}
