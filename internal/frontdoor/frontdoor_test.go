package frontdoor

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"aorta/internal/vclock"
)

// testResp is the frame shape the test handlers return.
type testResp struct {
	ID      string `json:"id,omitempty"`
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	Code    string `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

// startDoor serves one in-memory connection through a fresh door and
// returns the client side.
func startDoor(t *testing.T, cfg Config, exec Exec) (net.Conn, *Door) {
	t.Helper()
	d := New(cfg)
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.Serve(context.Background(), server, exec)
	}()
	t.Cleanup(func() {
		client.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("Serve did not exit")
		}
		d.Close()
	})
	return client, d
}

// echoExec responds with the statement it was given.
func echoExec(_ context.Context, id, stmt string) any {
	return &testResp{ID: id, OK: true, Message: stmt}
}

func readFrame(t *testing.T, sc *bufio.Scanner) testResp {
	t.Helper()
	if !sc.Scan() {
		t.Fatalf("no frame: %v", sc.Err())
	}
	var r testResp
	if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
		t.Fatalf("bad frame %q: %v", sc.Text(), err)
	}
	return r
}

func TestSplitTag(t *testing.T) {
	cases := []struct {
		line, id, stmt string
		tagged         bool
	}{
		{"SELECT 1", "", "SELECT 1", false},
		{"#7 SELECT 1", "7", "SELECT 1", true},
		{"#q-42 \\metrics", "q-42", "\\metrics", true},
		{"#9", "9", "", true},
		{"#", "", "#", false},
		{"# SELECT 1", "", "# SELECT 1", false},
		{"#a\tSHOW QUERIES", "a", "SHOW QUERIES", true},
	}
	for _, c := range cases {
		id, stmt, tagged := SplitTag(c.line)
		if id != c.id || stmt != c.stmt || tagged != c.tagged {
			t.Errorf("SplitTag(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.line, id, stmt, tagged, c.id, c.stmt, c.tagged)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		stmt string
		want Class
	}{
		{"SELECT s.id FROM sensor s", ClassAdHoc},
		{"select 1", ClassAdHoc},
		{"EXPLAIN SELECT 1", ClassAdHoc},
		{"CREATE AQ x AS SELECT 1", ClassManagement},
		{"SHOW QUERIES", ClassManagement},
		{"DROP AQ x", ClassManagement},
		{"\\metrics", ClassControl},
	}
	for _, c := range cases {
		if got := Classify(c.stmt); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.stmt, got, c.want)
		}
	}
}

// Concurrent tagged statements on one connection: every response must
// come back exactly once with its request's id, regardless of order.
func TestTaggedConcurrentIDMatching(t *testing.T) {
	const n = 64
	client, _ := startDoor(t, Config{Workers: 8, Window: 16}, func(_ context.Context, id, stmt string) any {
		return &testResp{ID: id, OK: true, Message: stmt}
	})
	go func() {
		for i := 0; i < n; i++ {
			fmt.Fprintf(client, "#req-%d SELECT %d\n", i, i)
		}
	}()
	sc := bufio.NewScanner(client)
	seen := make(map[string]string, n)
	for i := 0; i < n; i++ {
		r := readFrame(t, sc)
		if !r.OK {
			t.Fatalf("frame not ok: %+v", r)
		}
		if _, dup := seen[r.ID]; dup {
			t.Fatalf("duplicate response for id %s", r.ID)
		}
		seen[r.ID] = r.Message
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("req-%d", i)
		want := fmt.Sprintf("SELECT %d", i)
		if seen[id] != want {
			t.Errorf("response %s = %q, want %q (cross-matched ids)", id, seen[id], want)
		}
	}
}

// The in-flight window bounds how many tagged statements execute
// concurrently; the reader must block rather than overshoot.
func TestWindowEnforcement(t *testing.T) {
	const window = 2
	var cur, peak atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	exec := func(_ context.Context, id, _ string) any {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		started <- struct{}{}
		<-release
		cur.Add(-1)
		return &testResp{ID: id, OK: true}
	}
	client, _ := startDoor(t, Config{Workers: 8, Window: window}, exec)
	go func() {
		for i := 0; i < 6; i++ {
			fmt.Fprintf(client, "#%d SELECT 1\n", i)
		}
	}()
	// Wait for the window to fill, then give any overshoot time to show.
	for i := 0; i < window; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("window never filled")
		}
	}
	select {
	case <-started:
		t.Fatalf("more than %d statements in flight", window)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	sc := bufio.NewScanner(client)
	for i := 0; i < 6; i++ {
		if r := readFrame(t, sc); !r.OK {
			t.Fatalf("frame %d not ok: %+v", i, r)
		}
	}
	if p := peak.Load(); p > window {
		t.Fatalf("peak concurrency %d exceeds window %d", p, window)
	}
}

// Bare lines keep the legacy semantics: in order, one at a time, even
// when later statements would finish first.
func TestUntaggedInOrder(t *testing.T) {
	var calls atomic.Int64
	exec := func(_ context.Context, id, stmt string) any {
		n := calls.Add(1)
		if n == 1 {
			time.Sleep(30 * time.Millisecond) // first statement is slowest
		}
		return &testResp{ID: id, OK: true, Message: stmt}
	}
	client, _ := startDoor(t, Config{Workers: 8, Window: 8}, exec)
	go func() {
		fmt.Fprintln(client, "SELECT 1")
		fmt.Fprintln(client, "SELECT 2")
		fmt.Fprintln(client, "SELECT 3")
	}()
	sc := bufio.NewScanner(client)
	for i, want := range []string{"SELECT 1", "SELECT 2", "SELECT 3"} {
		r := readFrame(t, sc)
		if r.Message != want {
			t.Fatalf("frame %d = %q, want %q (untagged order broken)", i, r.Message, want)
		}
		if r.ID != "" {
			t.Fatalf("untagged response carries id %q", r.ID)
		}
	}
}

// A statement over the line limit must produce a typed error frame, not
// a silent connection drop.
func TestOversizedStatementError(t *testing.T) {
	client, d := startDoor(t, Config{Workers: 2, Window: 2, MaxLine: 1024}, echoExec)
	big := make([]byte, 4096)
	for i := range big {
		big[i] = 'x'
	}
	go client.Write(append(big, '\n'))
	sc := bufio.NewScanner(client)
	r := readFrame(t, sc)
	if r.OK || r.Code != CodeTooLong {
		t.Fatalf("oversized statement frame = %+v, want code %q", r, CodeTooLong)
	}
	// The stream position is lost, so the server must close the
	// connection after the error frame.
	if sc.Scan() {
		t.Fatalf("unexpected extra frame %q", sc.Text())
	}
	if m := d.Metrics(); m.Oversized != 1 {
		t.Fatalf("oversized counter = %d, want 1", m.Oversized)
	}
}

// Saturating the pool must shed ad-hoc SELECTs with a typed overloaded
// error while management statements still go through.
func TestShedUnderLoad(t *testing.T) {
	release := make(chan struct{})
	exec := func(_ context.Context, id, stmt string) any {
		if stmt == "CREATE AQ block AS SELECT 1" {
			<-release
		}
		return &testResp{ID: id, OK: true, Message: stmt}
	}
	// One worker, queue of 2 with 1 slot reserved for management: the
	// blocked worker plus one queued job exhaust the ad-hoc share.
	client, d := startDoor(t, Config{Workers: 1, Queue: 2, AdHocReserve: 1, Window: 8}, exec)
	sc := bufio.NewScanner(client)

	// Occupy the worker, then the single ad-hoc queue slot.
	fmt.Fprintln(client, "#w CREATE AQ block AS SELECT 1")
	awaitCond(t, func() bool { return d.Metrics().InFlight == 1 })
	fmt.Fprintln(client, "#q1 SELECT 1")
	awaitCond(t, func() bool { return d.Metrics().Queued == 1 })

	// The next ad-hoc statement must be shed immediately.
	fmt.Fprintln(client, "#q2 SELECT 2")
	r := readFrame(t, sc)
	if r.ID != "q2" || r.OK || r.Code != CodeOverloaded {
		t.Fatalf("saturated ad-hoc = %+v, want id q2 with code %q", r, CodeOverloaded)
	}
	if m := d.Metrics(); m.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", m.Shed)
	}

	// Management still has its reserved slot.
	fmt.Fprintln(client, "#m SHOW QUERIES")
	awaitCond(t, func() bool { return d.Metrics().Queued == 2 })

	close(release)
	got := map[string]bool{}
	for i := 0; i < 3; i++ {
		fr := readFrame(t, sc)
		if !fr.OK {
			t.Fatalf("post-release frame not ok: %+v", fr)
		}
		got[fr.ID] = true
	}
	for _, id := range []string{"w", "q1", "m"} {
		if !got[id] {
			t.Errorf("no response for %s after release", id)
		}
	}
}

// The per-connection token bucket rejects ad-hoc statements beyond the
// burst and refills on the (manual) clock.
func TestAdHocRateLimitManualClock(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	cfg := Config{Workers: 2, Window: 4, AdHocPerSec: 1, AdHocBurst: 2, Clock: clk}
	client, d := startDoor(t, cfg, echoExec)
	sc := bufio.NewScanner(client)

	for i := 0; i < 2; i++ {
		fmt.Fprintf(client, "#a%d SELECT 1\n", i)
		if r := readFrame(t, sc); !r.OK {
			t.Fatalf("burst statement %d rejected: %+v", i, r)
		}
	}
	fmt.Fprintln(client, "#a2 SELECT 1")
	if r := readFrame(t, sc); r.OK || r.Code != CodeRateLimited {
		t.Fatalf("over-burst statement = %+v, want code %q", r, CodeRateLimited)
	}
	// Management is exempt from the ad-hoc bucket.
	fmt.Fprintln(client, "#m SHOW QUERIES")
	if r := readFrame(t, sc); !r.OK {
		t.Fatalf("management rate-limited: %+v", r)
	}
	// One virtual second refills one token.
	clk.Advance(time.Second)
	fmt.Fprintln(client, "#a3 SELECT 1")
	if r := readFrame(t, sc); !r.OK {
		t.Fatalf("statement after refill rejected: %+v", r)
	}
	if m := d.Metrics(); m.RateLimited != 1 {
		t.Fatalf("rate-limited counter = %d, want 1", m.RateLimited)
	}
}

// A client that stops reading while responses pile up must be
// disconnected rather than block pool workers.
func TestSlowClientDisconnected(t *testing.T) {
	client, d := startDoor(t, Config{Workers: 4, Window: 4}, echoExec)
	// Never read; keep writing until the server kills the connection.
	deadline := time.Now().Add(10 * time.Second)
	var writeErr error
	for i := 0; writeErr == nil; i++ {
		if time.Now().After(deadline) {
			t.Fatal("server never disconnected the slow client")
		}
		_, writeErr = fmt.Fprintf(client, "#%d SELECT 1\n", i)
	}
	awaitCond(t, func() bool { return d.Metrics().SlowClients == 1 })
}

func TestQuitClosesConnection(t *testing.T) {
	client, _ := startDoor(t, Config{Workers: 2, Window: 2}, echoExec)
	fmt.Fprintln(client, "\\quit")
	buf := make([]byte, 1)
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := client.Read(buf); err == nil {
		t.Fatal("connection still open after \\quit")
	}
}

// Control statements execute inline even when the pool is saturated, so
// \metrics stays observable under overload.
func TestControlBypassesPool(t *testing.T) {
	release := make(chan struct{})
	exec := func(_ context.Context, id, stmt string) any {
		if stmt == "CREATE AQ block AS SELECT 1" {
			<-release
		}
		return &testResp{ID: id, OK: true, Message: stmt}
	}
	client, d := startDoor(t, Config{Workers: 1, Queue: 2, AdHocReserve: 1, Window: 4}, exec)
	defer close(release)
	sc := bufio.NewScanner(client)
	fmt.Fprintln(client, "#w CREATE AQ block AS SELECT 1")
	awaitCond(t, func() bool { return d.Metrics().InFlight == 1 })
	fmt.Fprintln(client, "\\metrics")
	r := readFrame(t, sc)
	if !r.OK || r.Message != "\\metrics" {
		t.Fatalf("control under load = %+v", r)
	}
}

// awaitCond polls cond with a wall-clock deadline.
func awaitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// A handler that panics must produce a typed "panic" error frame on the
// statement's own id — the connection keeps serving and the daemon-side
// pool worker survives.
func TestHandlerPanicContained(t *testing.T) {
	client, d := startDoor(t, Config{Workers: 2, Window: 4}, func(_ context.Context, id, stmt string) any {
		if stmt == "SELECT boom" {
			panic("predicate bug")
		}
		return &testResp{ID: id, OK: true, Message: stmt}
	})
	fmt.Fprintln(client, "#1 SELECT boom")
	fmt.Fprintln(client, "#2 SELECT fine")
	sc := bufio.NewScanner(client)
	frames := map[string]testResp{}
	for i := 0; i < 2; i++ {
		r := readFrame(t, sc)
		frames[r.ID] = r
	}
	if r := frames["1"]; r.OK || r.Code != CodePanic {
		t.Fatalf("panicking statement frame = %+v, want code %q", r, CodePanic)
	}
	if r := frames["2"]; !r.OK || r.Message != "SELECT fine" {
		t.Fatalf("statement after panic = %+v, want ok", r)
	}
	if got := d.Metrics().Panics; got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
}

// StmtTimeout must hand the handler a context that expires, and the
// expiry must release the pool worker even when the handler only returns
// on cancellation — a wedged device session cannot hold a slot forever.
func TestStmtTimeoutReleasesWorker(t *testing.T) {
	clk := vclock.NewManual(time.Unix(0, 0))
	cause := make(chan error, 1)
	client, _ := startDoor(t, Config{
		Workers: 1, Window: 4, Clock: clk, StmtTimeout: time.Second,
	}, func(ctx context.Context, id, stmt string) any {
		if stmt == "SELECT hang" {
			<-ctx.Done() // a statement wedged until its deadline fires
			cause <- context.Cause(ctx)
			return &testResp{ID: id, Error: "deadline", Code: "deadline_exceeded"}
		}
		return &testResp{ID: id, OK: true, Message: stmt}
	})
	fmt.Fprintln(client, "#1 SELECT hang")
	// Give the hang statement time to occupy the single worker, then
	// fire its deadline.
	time.Sleep(50 * time.Millisecond)
	clk.Advance(2 * time.Second)
	sc := bufio.NewScanner(client)
	if r := readFrame(t, sc); r.Code != "deadline_exceeded" {
		t.Fatalf("frame = %+v, want deadline_exceeded", r)
	}
	if err := <-cause; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("context cause = %v, want DeadlineExceeded", err)
	}
	// The single worker must be free again for the next statement.
	fmt.Fprintln(client, "#2 SELECT after")
	if r := readFrame(t, sc); !r.OK || r.ID != "2" {
		t.Fatalf("statement after timeout = %+v, want ok", r)
	}
}
