package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intQueue() *Queue[int] {
	return New(func(a, b int) bool { return a < b })
}

func TestEmpty(t *testing.T) {
	q := intQueue()
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue returned ok")
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue returned ok")
	}
}

func TestPopAscending(t *testing.T) {
	q := intQueue()
	in := []int{9, 4, 7, 1, 8, 2, 6, 3, 5, 0}
	for _, v := range in {
		q.Push(v)
	}
	for want := 0; want < len(in); want++ {
		got, ok := q.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d, %v; want %d", got, ok, want)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := intQueue()
	q.Push(3)
	q.Push(1)
	if v, _ := q.Peek(); v != 1 {
		t.Fatalf("Peek = %d, want 1", v)
	}
	if q.Len() != 2 {
		t.Fatalf("Len after Peek = %d, want 2", q.Len())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	type job struct {
		prio int
		name string
	}
	q := New(func(a, b job) bool { return a.prio < b.prio })
	q.Push(job{1, "first"})
	q.Push(job{1, "second"})
	q.Push(job{0, "urgent"})
	q.Push(job{1, "third"})
	wantOrder := []string{"urgent", "first", "second", "third"}
	for _, want := range wantOrder {
		got, ok := q.Pop()
		if !ok || got.name != want {
			t.Fatalf("Pop = %q, want %q", got.name, want)
		}
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q := intQueue()
	r := rand.New(rand.NewSource(3))
	var popped []int
	pushed := 0
	for i := 0; i < 2000; i++ {
		if r.Intn(3) != 0 || q.Len() == 0 {
			q.Push(r.Intn(1000))
			pushed++
		} else {
			v, ok := q.Pop()
			if !ok {
				t.Fatal("Pop failed on non-empty queue")
			}
			popped = append(popped, v)
		}
	}
	for q.Len() > 0 {
		v, _ := q.Pop()
		popped = append(popped, v)
	}
	if len(popped) != pushed {
		t.Fatalf("popped %d items, pushed %d", len(popped), pushed)
	}
}

func TestQuickHeapSortsLikeSort(t *testing.T) {
	f := func(vals []int) bool {
		q := intQueue()
		for _, v := range vals {
			q.Push(v)
		}
		want := append([]int(nil), vals...)
		sort.Ints(want)
		for _, w := range want {
			got, ok := q.Pop()
			if !ok || got != w {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := intQueue()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		q.Push(r.Int())
		if i%2 == 1 {
			q.Pop()
		}
	}
}
