// Package eventq provides a generic min-priority queue used by the
// discrete-event service simulator and the list scheduler's idle-machine
// loop.
//
// Unlike container/heap it needs no interface boilerplate at call sites and
// provides stable FIFO ordering among items with equal priority, which the
// simulator relies on for determinism.
package eventq

// Queue is a min-heap of items prioritized by the less function, with FIFO
// tie-breaking on insertion order. The zero value is not usable; call New.
type Queue[T any] struct {
	items []entry[T]
	less  func(a, b T) bool
	seq   uint64
}

type entry[T any] struct {
	val T
	seq uint64
}

// New returns an empty queue ordered by less.
func New[T any](less func(a, b T) bool) *Queue[T] {
	return &Queue[T]{less: less}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push adds an item to the queue.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, entry[T]{val: v, seq: q.seq})
	q.seq++
	q.up(len(q.items) - 1)
}

// Pop removes and returns the least item. The second return value is false
// when the queue is empty.
func (q *Queue[T]) Pop() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	top := q.items[0].val
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top, true
}

// Peek returns the least item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	return q.items[0].val, true
}

// before reports whether entry i must be dequeued before entry j.
func (q *Queue[T]) before(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.less(a.val, b.val) {
		return true
	}
	if q.less(b.val, a.val) {
		return false
	}
	return a.seq < b.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.before(l, smallest) {
			smallest = l
		}
		if r < n && q.before(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
