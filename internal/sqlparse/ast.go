package sqlparse

import (
	"fmt"
	"strings"
	"time"
)

// Statement is any parsed Aorta SQL statement.
type Statement interface {
	stmt()
	fmt.Stringer
}

// CreateAction registers a user-defined action:
//
//	CREATE ACTION sendphoto(String phone_no, String photo_pathname)
//	AS "lib/users/sendphoto.dll" PROFILE "profiles/users/sendphoto.xml"
type CreateAction struct {
	Name string
	// Params are the declared formal parameters.
	Params []ActionParam
	// Library is the code-block location. In this Go reproduction it
	// names a registered Go function instead of a DLL (see DESIGN.md §1).
	Library string
	// Profile is the action-profile path.
	Profile string
}

// ActionParam is one formal parameter of a CREATE ACTION.
type ActionParam struct {
	Type string
	Name string
}

func (*CreateAction) stmt() {}

// String implements fmt.Stringer.
func (c *CreateAction) String() string {
	params := make([]string, len(c.Params))
	for i, p := range c.Params {
		params[i] = p.Type + " " + p.Name
	}
	return fmt.Sprintf("CREATE ACTION %s(%s) AS %s PROFILE %s",
		c.Name, strings.Join(params, ", "), QuoteString(c.Library), QuoteString(c.Profile))
}

// QuoteString renders a string literal using exactly the escaping the
// lexer understands: backslash before quote and backslash, all other
// bytes verbatim. (fmt's %q would emit hex escapes the lexer treats as
// literal characters.)
func QuoteString(s string) string {
	var sb strings.Builder
	sb.Grow(len(s) + 2)
	sb.WriteByte(34)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == 34 || c == 92 {
			sb.WriteByte(92)
		}
		sb.WriteByte(c)
	}
	sb.WriteByte(34)
	return sb.String()
}

// CreateAQ registers a named action-embedded continuous query:
//
//	CREATE AQ snapshot AS SELECT ...
type CreateAQ struct {
	Name   string
	Select *Select
}

func (*CreateAQ) stmt() {}

// String implements fmt.Stringer.
func (c *CreateAQ) String() string {
	return fmt.Sprintf("CREATE AQ %s AS %s", c.Name, c.Select)
}

// DropAQ removes a registered query; StopAQ/StartAQ pause and resume it.
type DropAQ struct{ Name string }

func (*DropAQ) stmt() {}

// String implements fmt.Stringer.
func (d *DropAQ) String() string { return "DROP AQ " + d.Name }

// StopAQ pauses a registered query.
type StopAQ struct{ Name string }

func (*StopAQ) stmt() {}

// String implements fmt.Stringer.
func (s *StopAQ) String() string { return "STOP AQ " + s.Name }

// StartAQ resumes a stopped query.
type StartAQ struct{ Name string }

func (*StartAQ) stmt() {}

// String implements fmt.Stringer.
func (s *StartAQ) String() string { return "START AQ " + s.Name }

// Show lists registry contents: SHOW QUERIES | ACTIONS | DEVICES.
type Show struct{ What string }

func (*Show) stmt() {}

// String implements fmt.Stringer.
func (s *Show) String() string { return "SHOW " + s.What }

// Explain asks for the compiled plan of a query without running it:
// EXPLAIN SELECT ... .
type Explain struct{ Select *Select }

func (*Explain) stmt() {}

// String implements fmt.Stringer.
func (e *Explain) String() string { return "EXPLAIN " + e.Select.String() }

// Select is the query body. Its select list may contain action calls; its
// WHERE clause mixes ordinary comparisons with boolean device functions.
type Select struct {
	// Items are the select-list expressions (action calls, column refs).
	Items []Expr
	// From lists the virtual device tables with aliases.
	From []TableRef
	// Where is nil when absent.
	Where Expr
	// GroupBy lists grouping columns for aggregate queries (empty when
	// absent).
	GroupBy []*ColumnRef
	// Every is the sampling epoch for the continuous query; zero means
	// the engine default.
	Every time.Duration
}

func (*Select) stmt() {}

// String implements fmt.Stringer.
func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	sb.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Every > 0 {
		// Quoted Go duration: compound renderings like "1m30s" only parse
		// through the string-literal form, and a Select's rendering must
		// always re-parse (the engine journals queries as their SQL).
		fmt.Fprintf(&sb, " EVERY %q", s.Every.String())
	}
	return sb.String()
}

// TableRef is one FROM-clause entry: a device table with an optional
// alias (e.g. "sensor s").
type TableRef struct {
	Table string
	Alias string
}

// Name returns the alias if present, else the table name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// String implements fmt.Stringer.
func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Table + " " + t.Alias
	}
	return t.Table
}

// Expr is any expression node.
type Expr interface {
	expr()
	fmt.Stringer
}

// ColumnRef references a (possibly qualified) column: s.accel_x or loc.
type ColumnRef struct {
	Qualifier string // table alias; empty when unqualified
	Column    string
}

func (*ColumnRef) expr() {}

// String implements fmt.Stringer.
func (c *ColumnRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Column
	}
	return c.Column
}

// Literal is a constant: float64, string or bool.
type Literal struct{ Value any }

func (*Literal) expr() {}

// String implements fmt.Stringer.
func (l *Literal) String() string {
	if s, ok := l.Value.(string); ok {
		return QuoteString(s)
	}
	return fmt.Sprintf("%v", l.Value)
}

// Call is a function or action invocation: photo(c.ip, s.loc, "dir") or
// coverage(c.id, s.loc).
type Call struct {
	Func string
	Args []Expr
}

func (*Call) expr() {}

// String implements fmt.Stringer.
func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Func + "(" + strings.Join(args, ", ") + ")"
}

// Compare is a binary comparison: Op is one of =, !=, <, <=, >, >=.
type Compare struct {
	Op          string
	Left, Right Expr
}

func (*Compare) expr() {}

// String implements fmt.Stringer.
func (c *Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Logic is AND/OR over two operands.
type Logic struct {
	Op          string // "AND" or "OR"
	Left, Right Expr
}

func (*Logic) expr() {}

// String implements fmt.Stringer.
func (l *Logic) String() string {
	return fmt.Sprintf("(%s %s %s)", l.Left, l.Op, l.Right)
}

// Not negates a boolean expression.
type Not struct{ Inner Expr }

func (*Not) expr() {}

// String implements fmt.Stringer.
func (n *Not) String() string { return "NOT " + n.Inner.String() }

// Star is the bare * select item.
type Star struct{}

func (*Star) expr() {}

// String implements fmt.Stringer.
func (*Star) String() string { return "*" }
