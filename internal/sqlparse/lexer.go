// Package sqlparse implements the lexer and parser for Aorta's extended
// SQL (paper §2.2): CREATE ACTION registers user-defined actions, CREATE
// AQ registers named action-embedded continuous queries, and the SELECT
// syntax allows action calls in the select list and boolean device
// functions (e.g. coverage()) in the WHERE clause.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind int

// Token kinds.
const (
	TokenEOF TokenKind = iota + 1
	TokenIdent
	TokenKeyword
	TokenNumber
	TokenString
	TokenSymbol
)

// Token is one lexical unit. For keywords, Text is upper-cased; for other
// kinds it is verbatim.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input
}

// String implements fmt.Stringer.
func (t Token) String() string {
	switch t.Kind {
	case TokenEOF:
		return "end of input"
	case TokenString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

// keywords recognized by the lexer (case-insensitive).
var keywords = map[string]bool{
	"CREATE": true, "ACTION": true, "AQ": true, "AS": true,
	"PROFILE": true, "SELECT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "TRUE": true, "FALSE": true,
	"DROP": true, "STOP": true, "START": true, "SHOW": true,
	"QUERIES": true, "ACTIONS": true, "DEVICES": true, "SCANS": true,
	"EVERY":   true,
	"EXPLAIN": true, "GROUP": true, "BY": true,
}

// Lex tokenizes the input. It returns an error for unterminated strings
// and unexpected bytes.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// SQL line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < n && input[j] != quote {
				if input[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", i)
			}
			toks = append(toks, Token{Kind: TokenString, Text: sb.String(), Pos: i})
			i = j + 1
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			j := i
			seenDot := false
			for j < n && (isDigit(input[j]) || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, Token{Kind: TokenNumber, Text: input[i:j], Pos: i})
			i = j
		case isIdentStart(c):
			j := i
			for j < n && isIdentPart(input[j]) {
				j++
			}
			word := input[i:j]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokenKeyword, Text: upper, Pos: i})
			} else {
				toks = append(toks, Token{Kind: TokenIdent, Text: word, Pos: i})
			}
			i = j
		default:
			sym, width, err := lexSymbol(input, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, Token{Kind: TokenSymbol, Text: sym, Pos: i})
			i += width
		}
	}
	toks = append(toks, Token{Kind: TokenEOF, Pos: n})
	return toks, nil
}

func lexSymbol(input string, i int) (string, int, error) {
	two := ""
	if i+1 < len(input) {
		two = input[i : i+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		return two, 2, nil
	}
	switch input[i] {
	case '(', ')', ',', '.', ';', '*', '=', '<', '>', '+', '-', '/':
		return string(input[i]), 1, nil
	}
	return "", 0, fmt.Errorf("sqlparse: unexpected character %q at offset %d", input[i], i)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}
