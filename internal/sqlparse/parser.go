package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse parses one statement. Trailing semicolons are allowed.
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(TokenSymbol, ";")
	if !p.at(TokenEOF, "") {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokenEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text, when
// non-empty).
func (p *parser) at(kind TokenKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

// accept consumes the current token when it matches.
func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a matching token or fails.
func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		switch kind {
		case TokenIdent:
			want = "identifier"
		case TokenString:
			want = "string literal"
		case TokenNumber:
			want = "number"
		default:
			want = "token"
		}
	}
	return Token{}, p.errorf("expected %s, found %s", want, p.peek())
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.accept(TokenKeyword, "CREATE"):
		switch {
		case p.accept(TokenKeyword, "ACTION"):
			return p.createAction()
		case p.accept(TokenKeyword, "AQ"):
			return p.createAQ()
		default:
			return nil, p.errorf("expected ACTION or AQ after CREATE, found %s", p.peek())
		}
	case p.accept(TokenKeyword, "DROP"):
		if _, err := p.expect(TokenKeyword, "AQ"); err != nil {
			return nil, err
		}
		name, err := p.expect(TokenIdent, "")
		if err != nil {
			return nil, err
		}
		return &DropAQ{Name: name.Text}, nil
	case p.accept(TokenKeyword, "STOP"):
		if _, err := p.expect(TokenKeyword, "AQ"); err != nil {
			return nil, err
		}
		name, err := p.expect(TokenIdent, "")
		if err != nil {
			return nil, err
		}
		return &StopAQ{Name: name.Text}, nil
	case p.accept(TokenKeyword, "START"):
		if _, err := p.expect(TokenKeyword, "AQ"); err != nil {
			return nil, err
		}
		name, err := p.expect(TokenIdent, "")
		if err != nil {
			return nil, err
		}
		return &StartAQ{Name: name.Text}, nil
	case p.accept(TokenKeyword, "SHOW"):
		t := p.next()
		if t.Kind != TokenKeyword || (t.Text != "QUERIES" && t.Text != "ACTIONS" && t.Text != "DEVICES" && t.Text != "SCANS") {
			return nil, p.errorf("expected QUERIES, ACTIONS, DEVICES or SCANS after SHOW, found %s", t)
		}
		return &Show{What: t.Text}, nil
	case p.accept(TokenKeyword, "EXPLAIN"):
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &Explain{Select: sel.(*Select)}, nil
	case p.at(TokenKeyword, "SELECT"):
		return p.selectStmt()
	default:
		return nil, p.errorf("expected a statement, found %s", p.peek())
	}
}

// createAction parses the remainder of CREATE ACTION name(params) AS
// "lib" PROFILE "profile".
func (p *parser) createAction() (Statement, error) {
	name, err := p.expect(TokenIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenSymbol, "("); err != nil {
		return nil, err
	}
	var params []ActionParam
	if !p.at(TokenSymbol, ")") {
		for {
			typ, err := p.expect(TokenIdent, "")
			if err != nil {
				return nil, err
			}
			pname, err := p.expect(TokenIdent, "")
			if err != nil {
				return nil, err
			}
			params = append(params, ActionParam{Type: typ.Text, Name: pname.Text})
			if !p.accept(TokenSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(TokenSymbol, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenKeyword, "AS"); err != nil {
		return nil, err
	}
	lib, err := p.expect(TokenString, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenKeyword, "PROFILE"); err != nil {
		return nil, err
	}
	prof, err := p.expect(TokenString, "")
	if err != nil {
		return nil, err
	}
	return &CreateAction{Name: name.Text, Params: params, Library: lib.Text, Profile: prof.Text}, nil
}

func (p *parser) createAQ() (Statement, error) {
	name, err := p.expect(TokenIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenKeyword, "AS"); err != nil {
		return nil, err
	}
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	return &CreateAQ{Name: name.Text, Select: sel.(*Select)}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	if _, err := p.expect(TokenKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	for {
		if p.accept(TokenSymbol, "*") {
			sel.Items = append(sel.Items, &Star{})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, e)
		}
		if !p.accept(TokenSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokenKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		table, err := p.expect(TokenIdent, "")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: table.Text}
		if p.at(TokenIdent, "") {
			ref.Alias = p.next().Text
		}
		sel.From = append(sel.From, ref)
		if !p.accept(TokenSymbol, ",") {
			break
		}
	}
	if p.accept(TokenKeyword, "WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept(TokenKeyword, "GROUP") {
		if _, err := p.expect(TokenKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			name, err := p.expect(TokenIdent, "")
			if err != nil {
				return nil, err
			}
			ref := &ColumnRef{Column: name.Text}
			if p.accept(TokenSymbol, ".") {
				col, err := p.expect(TokenIdent, "")
				if err != nil {
					return nil, err
				}
				ref.Qualifier = name.Text
				ref.Column = col.Text
			}
			sel.GroupBy = append(sel.GroupBy, ref)
			if !p.accept(TokenSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokenKeyword, "EVERY") {
		d, err := p.duration()
		if err != nil {
			return nil, err
		}
		sel.Every = d
	}
	return sel, nil
}

// duration parses forms like "5 seconds", "1 minute", "500 ms", or a Go
// duration string literal.
func (p *parser) duration() (time.Duration, error) {
	if p.at(TokenString, "") {
		t := p.next()
		d, err := time.ParseDuration(t.Text)
		if err != nil {
			return 0, p.errorf("bad duration %q: %v", t.Text, err)
		}
		return d, nil
	}
	num, err := p.expect(TokenNumber, "")
	if err != nil {
		return 0, err
	}
	val, err := strconv.ParseFloat(num.Text, 64)
	if err != nil {
		return 0, p.errorf("bad number %q", num.Text)
	}
	unitTok, err := p.expect(TokenIdent, "")
	if err != nil {
		return 0, err
	}
	var unit time.Duration
	switch strings.ToLower(unitTok.Text) {
	case "ms", "millisecond", "milliseconds":
		unit = time.Millisecond
	case "s", "sec", "secs", "second", "seconds":
		unit = time.Second
	case "min", "mins", "minute", "minutes":
		unit = time.Minute
	case "h", "hr", "hrs", "hour", "hours":
		unit = time.Hour
	default:
		return 0, p.errorf("unknown duration unit %q", unitTok.Text)
	}
	return time.Duration(val * float64(unit)), nil
}

// Expression grammar: or → and → not → comparison → primary.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokenKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &Logic{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokenKeyword, "AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &Logic{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(TokenKeyword, "NOT") {
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Not{Inner: inner}, nil
	}
	return p.comparison()
}

var comparisonOps = map[string]bool{
	"=": true, "!=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true,
}

func (p *parser) comparison() (Expr, error) {
	left, err := p.primary()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokenSymbol && comparisonOps[p.peek().Text] {
		op := p.next().Text
		if op == "<>" {
			op = "!="
		}
		right, err := p.primary()
		if err != nil {
			return nil, err
		}
		return &Compare{Op: op, Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case p.accept(TokenSymbol, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokenNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &Literal{Value: v}, nil
	case t.Kind == TokenSymbol && t.Text == "-":
		p.next()
		num, err := p.expect(TokenNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(num.Text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", num.Text)
		}
		return &Literal{Value: -v}, nil
	case t.Kind == TokenString:
		p.next()
		return &Literal{Value: t.Text}, nil
	case t.Kind == TokenKeyword && t.Text == "TRUE":
		p.next()
		return &Literal{Value: true}, nil
	case t.Kind == TokenKeyword && t.Text == "FALSE":
		p.next()
		return &Literal{Value: false}, nil
	case t.Kind == TokenIdent:
		p.next()
		// Function call?
		if p.accept(TokenSymbol, "(") {
			call := &Call{Func: t.Text}
			if !p.at(TokenSymbol, ")") {
				for {
					// count(*) and friends.
					if p.accept(TokenSymbol, "*") {
						call.Args = append(call.Args, &Star{})
					} else {
						arg, err := p.expr()
						if err != nil {
							return nil, err
						}
						call.Args = append(call.Args, arg)
					}
					if !p.accept(TokenSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(TokenSymbol, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified column?
		if p.accept(TokenSymbol, ".") {
			col, err := p.expect(TokenIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Qualifier: t.Text, Column: col.Text}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	default:
		return nil, p.errorf("expected an expression, found %s", t)
	}
}
