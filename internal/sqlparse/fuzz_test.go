package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse: the parser must never panic and must round-trip whatever it
// accepts (parse → String → parse → identical String).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, "photos/admin") FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc)`,
		`CREATE ACTION sendphoto(String phone_no, String path) AS "lib.dll" PROFILE "p.xml"`,
		`SELECT * FROM sensor EVERY 5 seconds`,
		`SELECT avg(s.temp), count(*) FROM sensor s WHERE s.temp > -10.5 OR NOT near(s.loc, s.loc, 1)`,
		`EXPLAIN SELECT a FROM t WHERE (x > 1 OR y < 2) AND z != 3`,
		`DROP AQ x; `,
		`SHOW QUERIES`,
		"SELECT a -- comment\nFROM t",
		`SELECT "unterminated`,
		`SELECT 'quoted \' string' FROM t`,
		`CREATE`,
		`@#$%`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", input, rendered, err)
		}
		if stmt2.String() != rendered {
			t.Fatalf("rendering not a fixed point:\n  %s\n  %s", rendered, stmt2.String())
		}
	})
}

// FuzzLex: the lexer must never panic and its token stream must cover the
// whole input for accepted inputs.
func FuzzLex(f *testing.F) {
	for _, s := range []string{`SELECT x.y != 3.5 <= "str"`, "a\"b", "--", "1.2.3", "\\"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := Lex(input)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokenEOF {
			t.Fatalf("token stream not EOF-terminated for %q", input)
		}
		for _, tok := range toks[:len(toks)-1] {
			if tok.Kind == TokenKeyword && tok.Text != strings.ToUpper(tok.Text) {
				t.Fatalf("keyword %q not upper-cased", tok.Text)
			}
		}
	})
}
