package sqlparse

import (
	"strings"
	"testing"
	"time"
)

// TestParseSnapshotQuery parses the paper's Figure 1 example verbatim.
func TestParseSnapshotQuery(t *testing.T) {
	input := `CREATE AQ snapshot AS
		SELECT photo(c.ip, s.loc, "photos/admin")
		FROM sensor s, camera c
		WHERE s.accel_x > 500 AND coverage(c.id, s.loc)`
	stmt, err := Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	aq, ok := stmt.(*CreateAQ)
	if !ok {
		t.Fatalf("statement type %T", stmt)
	}
	if aq.Name != "snapshot" {
		t.Errorf("name = %q", aq.Name)
	}
	sel := aq.Select
	if len(sel.Items) != 1 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	call, ok := sel.Items[0].(*Call)
	if !ok || call.Func != "photo" || len(call.Args) != 3 {
		t.Fatalf("select item = %v", sel.Items[0])
	}
	if ref, ok := call.Args[0].(*ColumnRef); !ok || ref.Qualifier != "c" || ref.Column != "ip" {
		t.Errorf("arg0 = %v", call.Args[0])
	}
	if lit, ok := call.Args[2].(*Literal); !ok || lit.Value != "photos/admin" {
		t.Errorf("arg2 = %v", call.Args[2])
	}
	if len(sel.From) != 2 {
		t.Fatalf("from = %v", sel.From)
	}
	if sel.From[0].Table != "sensor" || sel.From[0].Alias != "s" ||
		sel.From[1].Table != "camera" || sel.From[1].Alias != "c" {
		t.Errorf("from = %v", sel.From)
	}
	logic, ok := sel.Where.(*Logic)
	if !ok || logic.Op != "AND" {
		t.Fatalf("where = %v", sel.Where)
	}
	cmp, ok := logic.Left.(*Compare)
	if !ok || cmp.Op != ">" {
		t.Fatalf("left = %v", logic.Left)
	}
	if ref := cmp.Left.(*ColumnRef); ref.Qualifier != "s" || ref.Column != "accel_x" {
		t.Errorf("cmp left = %v", cmp.Left)
	}
	if lit := cmp.Right.(*Literal); lit.Value != 500.0 {
		t.Errorf("cmp right = %v", cmp.Right)
	}
	cov, ok := logic.Right.(*Call)
	if !ok || cov.Func != "coverage" || len(cov.Args) != 2 {
		t.Fatalf("right = %v", logic.Right)
	}
}

// TestParseCreateAction parses the paper's §2.2 sendphoto registration.
func TestParseCreateAction(t *testing.T) {
	input := `CREATE ACTION sendphoto(String phone_no, String photo_pathname)
		AS "lib/users/sendphoto.dll"
		PROFILE "profiles/users/sendphoto.xml"`
	stmt, err := Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	ca, ok := stmt.(*CreateAction)
	if !ok {
		t.Fatalf("type %T", stmt)
	}
	if ca.Name != "sendphoto" {
		t.Errorf("name = %q", ca.Name)
	}
	if len(ca.Params) != 2 || ca.Params[0].Type != "String" || ca.Params[0].Name != "phone_no" ||
		ca.Params[1].Name != "photo_pathname" {
		t.Errorf("params = %+v", ca.Params)
	}
	if ca.Library != "lib/users/sendphoto.dll" {
		t.Errorf("library = %q", ca.Library)
	}
	if ca.Profile != "profiles/users/sendphoto.xml" {
		t.Errorf("profile = %q", ca.Profile)
	}
}

func TestParseCreateActionNoParams(t *testing.T) {
	stmt, err := Parse(`CREATE ACTION ping() AS "ping" PROFILE "p.xml"`)
	if err != nil {
		t.Fatal(err)
	}
	if ca := stmt.(*CreateAction); len(ca.Params) != 0 {
		t.Errorf("params = %v", ca.Params)
	}
}

func TestParseEveryClause(t *testing.T) {
	tests := []struct {
		in   string
		want time.Duration
	}{
		{`SELECT temp FROM sensor EVERY 5 seconds`, 5 * time.Second},
		{`SELECT temp FROM sensor EVERY 1 minute`, time.Minute},
		{`SELECT temp FROM sensor EVERY 500 ms`, 500 * time.Millisecond},
		{`SELECT temp FROM sensor EVERY 2 hours`, 2 * time.Hour},
		{`SELECT temp FROM sensor EVERY "1.5s"`, 1500 * time.Millisecond},
	}
	for _, tt := range tests {
		stmt, err := Parse(tt.in)
		if err != nil {
			t.Errorf("%s: %v", tt.in, err)
			continue
		}
		if got := stmt.(*Select).Every; got != tt.want {
			t.Errorf("%s: Every = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseDropStopStartShow(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"DROP AQ snapshot", "DROP AQ snapshot"},
		{"STOP AQ snapshot", "STOP AQ snapshot"},
		{"START AQ snapshot", "START AQ snapshot"},
		{"SHOW QUERIES", "SHOW QUERIES"},
		{"SHOW ACTIONS", "SHOW ACTIONS"},
		{"SHOW DEVICES", "SHOW DEVICES"},
		{"SHOW SCANS", "SHOW SCANS"},
	}
	for _, tt := range tests {
		stmt, err := Parse(tt.in)
		if err != nil {
			t.Errorf("%s: %v", tt.in, err)
			continue
		}
		if got := stmt.String(); got != tt.want {
			t.Errorf("Parse(%s).String() = %q", tt.in, got)
		}
	}
}

func TestParseSelectStar(t *testing.T) {
	stmt, err := Parse(`SELECT * FROM sensor`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	if _, ok := sel.Items[0].(*Star); !ok {
		t.Errorf("item = %v", sel.Items[0])
	}
}

func TestParseOperatorsAndPrecedence(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE x > 1 OR y <= 2 AND NOT z = 3`)
	if err != nil {
		t.Fatal(err)
	}
	where := stmt.(*Select).Where
	or, ok := where.(*Logic)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %v", where)
	}
	and, ok := or.Right.(*Logic)
	if !ok || and.Op != "AND" {
		t.Fatalf("right of OR = %v (AND must bind tighter)", or.Right)
	}
	if _, ok := and.Right.(*Not); !ok {
		t.Fatalf("right of AND = %v", and.Right)
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE (x > 1 OR y > 2) AND z > 3`)
	if err != nil {
		t.Fatal(err)
	}
	and := stmt.(*Select).Where.(*Logic)
	if and.Op != "AND" {
		t.Fatalf("top = %v", and)
	}
	if inner, ok := and.Left.(*Logic); !ok || inner.Op != "OR" {
		t.Fatalf("left = %v", and.Left)
	}
}

func TestParseComparisonOps(t *testing.T) {
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		stmt, err := Parse(`SELECT a FROM t WHERE x ` + op + ` 5`)
		if err != nil {
			t.Errorf("op %s: %v", op, err)
			continue
		}
		cmp := stmt.(*Select).Where.(*Compare)
		if cmp.Op != op {
			t.Errorf("op = %q, want %q", cmp.Op, op)
		}
	}
	// <> normalizes to !=.
	stmt, err := Parse(`SELECT a FROM t WHERE x <> 5`)
	if err != nil {
		t.Fatal(err)
	}
	if cmp := stmt.(*Select).Where.(*Compare); cmp.Op != "!=" {
		t.Errorf("<> parsed as %q", cmp.Op)
	}
}

func TestParseNegativeNumber(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE x < -42.5`)
	if err != nil {
		t.Fatal(err)
	}
	cmp := stmt.(*Select).Where.(*Compare)
	if lit := cmp.Right.(*Literal); lit.Value != -42.5 {
		t.Errorf("literal = %v", lit.Value)
	}
}

func TestParseBooleans(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE active = TRUE AND gone = FALSE`)
	if err != nil {
		t.Fatal(err)
	}
	and := stmt.(*Select).Where.(*Logic)
	if lit := and.Left.(*Compare).Right.(*Literal); lit.Value != true {
		t.Errorf("TRUE literal = %v", lit.Value)
	}
	if lit := and.Right.(*Compare).Right.(*Literal); lit.Value != false {
		t.Errorf("FALSE literal = %v", lit.Value)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	stmt, err := Parse(`select temp from sensor where temp > 30`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*Select); !ok {
		t.Fatalf("type %T", stmt)
	}
}

func TestParseComments(t *testing.T) {
	stmt, err := Parse("SELECT temp -- the reading\nFROM sensor")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*Select); !ok {
		t.Fatalf("type %T", stmt)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse(`SELECT temp FROM sensor;`); err != nil {
		t.Fatal(err)
	}
}

func TestParseNestedCalls(t *testing.T) {
	stmt, err := Parse(`SELECT f(g(x), 3) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	call := stmt.(*Select).Items[0].(*Call)
	if call.Func != "f" || len(call.Args) != 2 {
		t.Fatalf("call = %v", call)
	}
	if inner := call.Args[0].(*Call); inner.Func != "g" {
		t.Errorf("inner = %v", inner)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"CREATE",
		"CREATE ACTION",
		"CREATE ACTION f",
		"CREATE ACTION f(x) AS \"lib\"",            // missing param type or PROFILE
		"CREATE ACTION f() AS lib PROFILE \"p\"",   // lib not a string
		"CREATE AQ q SELECT a FROM t",              // missing AS
		"DROP snapshot",                            // missing AQ
		"SHOW TABLES",                              // unknown SHOW target
		"SELECT a FROM t WHERE x >",                // dangling operator
		"SELECT a FROM t EVERY 5 parsecs",          // unknown unit
		"SELECT a FROM t EVERY \"xyz\"",            // bad duration string
		"SELECT f(a FROM t",                        // unclosed call
		"SELECT a FROM t WHERE (x > 1",             // unclosed paren
		"SELECT a FROM t; SELECT b FROM t",         // two statements
		"SELECT 'unterminated FROM t",              // unterminated string
		"SELECT a FROM t WHERE x @ 5",              // bad character
		"CREATE AQ q AS SELECT a FROM t WHERE AND", // expression starts with AND
		"CREATE ACTION f() AS \"l\" PROFILE \"p\" PROFILE \"q\"", // trailing tokens
	}
	for _, in := range tests {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		`CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, "photos/admin") FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc)`,
		`SELECT temp, light FROM sensor WHERE temp > 30 EVERY 5 seconds`,
		// Compound duration renderings ("1m0s", "1h30m0s") must survive the
		// round trip — the engine's journal replays queries from their SQL.
		`SELECT temp FROM sensor EVERY "60s"`,
		`SELECT temp FROM sensor EVERY 90 minutes`,
		`CREATE ACTION sendphoto(String phone_no, String path) AS "lib/sp.dll" PROFILE "sp.xml"`,
	}
	for _, in := range inputs {
		stmt1, err := Parse(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		// Re-parse the rendered form; it must produce the same rendering.
		stmt2, err := Parse(stmt1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", stmt1.String(), err)
		}
		if stmt1.String() != stmt2.String() {
			t.Errorf("round trip changed:\n  %s\n  %s", stmt1, stmt2)
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := Lex(`SELECT x.y != 3.5 <= "str"`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		if tok.Kind == TokenEOF {
			break
		}
		kinds = append(kinds, tok.String())
	}
	want := `SELECT x . y != 3.5 <= "str"`
	if got := strings.Join(kinds, " "); got != want {
		t.Errorf("tokens = %s, want %s", got, want)
	}
}

func TestLexerEscapedString(t *testing.T) {
	toks, err := Lex(`"a\"b"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != `a"b` {
		t.Errorf("string = %q", toks[0].Text)
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse(`EXPLAIN SELECT photo(c.ip, s.loc, "d") FROM sensor s, camera c WHERE s.accel_x > 500`)
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*Explain)
	if !ok {
		t.Fatalf("type %T", stmt)
	}
	if len(ex.Select.From) != 2 {
		t.Errorf("from = %v", ex.Select.From)
	}
	if !strings.HasPrefix(ex.String(), "EXPLAIN SELECT") {
		t.Errorf("String() = %q", ex.String())
	}
	if _, err := Parse("EXPLAIN"); err == nil {
		t.Error("bare EXPLAIN accepted")
	}
	if _, err := Parse("EXPLAIN DROP AQ x"); err == nil {
		t.Error("EXPLAIN of non-select accepted")
	}
}

func BenchmarkParseSnapshotQuery(b *testing.B) {
	const q = `CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, "photos/admin") FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc) EVERY "2s"`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLexSnapshotQuery(b *testing.B) {
	const q = `SELECT photo(c.ip, s.loc, "photos/admin") FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc)`
	for i := 0; i < b.N; i++ {
		if _, err := Lex(q); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseGroupBy(t *testing.T) {
	stmt, err := Parse(`SELECT s.depth, count(*) FROM sensor s GROUP BY s.depth EVERY 5 seconds`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].Qualifier != "s" || sel.GroupBy[0].Column != "depth" {
		t.Fatalf("group by = %v", sel.GroupBy)
	}
	if sel.Every != 5*time.Second {
		t.Errorf("every = %v", sel.Every)
	}
	if !strings.Contains(sel.String(), "GROUP BY s.depth") {
		t.Errorf("String() = %q", sel.String())
	}
	// Multiple group columns, unqualified.
	stmt, err = Parse(`SELECT count(*) FROM t GROUP BY a, b.c`)
	if err != nil {
		t.Fatal(err)
	}
	sel = stmt.(*Select)
	if len(sel.GroupBy) != 2 || sel.GroupBy[0].Column != "a" || sel.GroupBy[1].Qualifier != "b" {
		t.Fatalf("group by = %v", sel.GroupBy)
	}
	if _, err := Parse(`SELECT count(*) FROM t GROUP x`); err == nil {
		t.Error("GROUP without BY accepted")
	}
}
