package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2, 3}, Point{1, 2, 3}, 0},
		{"unit x", Point{}, Point{1, 0, 0}, 1},
		{"pythagorean", Point{}, Point{3, 4, 0}, 5},
		{"3d", Point{}, Point{2, 3, 6}, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want) {
				t.Errorf("Dist = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistXYIgnoresZ(t *testing.T) {
	p := Point{0, 0, 10}
	q := Point{3, 4, -5}
	if got := p.DistXY(q); !almostEqual(got, 5) {
		t.Errorf("DistXY = %v, want 5", got)
	}
}

func TestSubAdd(t *testing.T) {
	p := Point{1, 2, 3}
	q := Point{4, 6, 8}
	if got := q.Sub(p).Add(p); got != q {
		t.Errorf("Sub/Add round trip = %v, want %v", got, q)
	}
}

func TestNormDeg(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{180, 180},
		{-180, 180},
		{190, -170},
		{360, 0},
		{-360, 0},
		{540, 180},
		{721, 1},
	}
	for _, tt := range tests {
		if got := NormDeg(tt.in); !almostEqual(got, tt.want) {
			t.Errorf("NormDeg(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestNormDegPropertyRange(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e12 {
			return true
		}
		n := NormDeg(a)
		return n > -180-1e-6 && n <= 180+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAimStraightDown(t *testing.T) {
	m := DefaultMount(Point{0, 0, 3}, 0)
	o, ok := m.Aim(Point{0.001, 0, 0})
	if !ok {
		t.Fatal("Aim failed for target almost directly below")
	}
	if o.Tilt < 89 || o.Tilt > 90 {
		t.Errorf("tilt = %v, want ≈90 for target below camera", o.Tilt)
	}
}

func TestAimForwardHorizontalish(t *testing.T) {
	m := DefaultMount(Point{0, 0, 3}, 0)
	o, ok := m.Aim(Point{10, 0, 3})
	if !ok {
		t.Fatal("Aim failed for target straight ahead at camera height")
	}
	if !almostEqual(o.Pan, 0) {
		t.Errorf("pan = %v, want 0", o.Pan)
	}
	if !almostEqual(o.Tilt, 0) {
		t.Errorf("tilt = %v, want 0", o.Tilt)
	}
}

func TestAimRespectsMountForward(t *testing.T) {
	m := DefaultMount(Point{0, 0, 3}, 90) // facing +Y
	o, ok := m.Aim(Point{0, 5, 0})
	if !ok {
		t.Fatal("Aim failed")
	}
	if !almostEqual(o.Pan, 0) {
		t.Errorf("pan = %v, want 0 when target lies on the forward axis", o.Pan)
	}
}

func TestAimOutOfRange(t *testing.T) {
	m := DefaultMount(Point{0, 0, 3}, 0)
	if _, ok := m.Aim(Point{100, 0, 0}); ok {
		t.Error("Aim succeeded for target beyond RangeM")
	}
}

func TestAimOutsidePanEnvelope(t *testing.T) {
	m := Mount{Position: Point{0, 0, 3}, ForwardDeg: 0, PanRangeDeg: 45, TiltMaxDeg: 90, RangeM: 20}
	if _, ok := m.Aim(Point{-5, 0.1, 0}); ok {
		t.Error("Aim succeeded for target behind a ±45° camera")
	}
}

func TestAimAboveCameraRejected(t *testing.T) {
	m := DefaultMount(Point{0, 0, 1}, 0)
	// Target above the camera needs negative (upward) tilt.
	if _, ok := m.Aim(Point{3, 0, 5}); ok {
		t.Error("Aim succeeded for target above a downward-only camera")
	}
}

func TestAimZeroDistance(t *testing.T) {
	m := DefaultMount(Point{1, 1, 1}, 0)
	if _, ok := m.Aim(Point{1, 1, 1}); ok {
		t.Error("Aim succeeded for target exactly at the camera position")
	}
}

func TestAimZoomGrowsWithDistance(t *testing.T) {
	m := DefaultMount(Point{0, 0, 3}, 0)
	near, ok1 := m.Aim(Point{2, 0, 0})
	far, ok2 := m.Aim(Point{12, 0, 0})
	if !ok1 || !ok2 {
		t.Fatal("Aim failed")
	}
	if near.Zoom >= far.Zoom {
		t.Errorf("zoom near (%v) >= zoom far (%v); zoom should grow with distance", near.Zoom, far.Zoom)
	}
}

func TestCoversMatchesAim(t *testing.T) {
	m := DefaultMount(Point{0, 0, 3}, 0)
	f := func(x, y float64) bool {
		x = math.Mod(x, 40)
		y = math.Mod(y, 40)
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		p := Point{x, y, 0}
		_, ok := m.Aim(p)
		return ok == m.Covers(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngularDist(t *testing.T) {
	a := Orientation{Pan: -30, Tilt: 10}
	b := Orientation{Pan: 40, Tilt: 50}
	pan, tilt := AngularDist(a, b)
	if !almostEqual(pan, 70) || !almostEqual(tilt, 40) {
		t.Errorf("AngularDist = (%v, %v), want (70, 40)", pan, tilt)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(0, 10, 0.5); !almostEqual(got, 5) {
		t.Errorf("Lerp = %v, want 5", got)
	}
	if got := Lerp(0, 10, 2); !almostEqual(got, 10) {
		t.Errorf("Lerp clamping high = %v, want 10", got)
	}
	if got := Lerp(0, 10, -1); !almostEqual(got, 0) {
		t.Errorf("Lerp clamping low = %v, want 0", got)
	}
}

func TestLerpOrientationMidpoint(t *testing.T) {
	a := Orientation{Pan: 0, Tilt: 0, Zoom: 1}
	b := Orientation{Pan: 90, Tilt: 40, Zoom: 3}
	mid := LerpOrientation(a, b, 0.5)
	if !almostEqual(mid.Pan, 45) || !almostEqual(mid.Tilt, 20) || !almostEqual(mid.Zoom, 2) {
		t.Errorf("LerpOrientation midpoint = %+v", mid)
	}
}

func TestAimPanSymmetryProperty(t *testing.T) {
	// Mirroring the target across the forward axis negates pan.
	m := DefaultMount(Point{0, 0, 3}, 0)
	f := func(x, y float64) bool {
		x = 1 + math.Abs(math.Mod(x, 8))
		y = math.Mod(y, 8)
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		o1, ok1 := m.Aim(Point{x, y, 0})
		o2, ok2 := m.Aim(Point{x, -y, 0})
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return almostEqual(o1.Pan, -o2.Pan) && almostEqual(o1.Tilt, o2.Tilt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAim(b *testing.B) {
	m := DefaultMount(Point{0, 4, 3}, 0)
	target := Point{7, 2, 0}
	for i := 0; i < b.N; i++ {
		if _, ok := m.Aim(target); !ok {
			b.Fatal("target not coverable")
		}
	}
}
