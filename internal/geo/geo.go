// Package geo implements the small amount of 2½-D geometry Aorta needs:
// locating devices on a floor plan, solving the pan/tilt angles a PTZ
// camera must adopt to aim at a location, and deciding whether a location
// falls inside a camera's coverage volume (the coverage() boolean function
// of the paper's example queries).
//
// Coordinates are metres. The floor is the XY plane; Z points up. Angles
// are degrees: pan is measured counter-clockwise in the XY plane relative
// to the camera mount's forward axis, tilt is measured downward from the
// horizontal (ceiling cameras look down, so tilt ∈ [0°, 90°]).
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the lab, in metres.
type Point struct {
	X, Y, Z float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f, %.2f)", p.X, p.Y, p.Z)
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	d := p.Sub(q)
	return math.Sqrt(d.X*d.X + d.Y*d.Y + d.Z*d.Z)
}

// DistXY returns the distance between the floor projections of p and q.
func (p Point) DistXY(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Orientation describes a PTZ head position: pan and tilt in degrees and a
// unitless zoom factor (1.0 = widest).
type Orientation struct {
	Pan  float64 `json:"pan"`
	Tilt float64 `json:"tilt"`
	Zoom float64 `json:"zoom"`
}

// String implements fmt.Stringer.
func (o Orientation) String() string {
	return fmt.Sprintf("pan=%.1f° tilt=%.1f° zoom=%.2f", o.Pan, o.Tilt, o.Zoom)
}

// AngularDist returns the per-axis absolute angular distances between two
// head positions. The camera's pan and tilt motors run concurrently, so
// movement time is driven by the slower axis.
func AngularDist(a, b Orientation) (pan, tilt float64) {
	return math.Abs(a.Pan - b.Pan), math.Abs(a.Tilt - b.Tilt)
}

// Mount describes where and how a camera is installed.
type Mount struct {
	// Position of the camera body, typically on the ceiling.
	Position Point
	// ForwardDeg is the direction (degrees, counter-clockwise from +X) the
	// head faces at pan = 0.
	ForwardDeg float64
	// PanRangeDeg is the half-range of the pan axis (AXIS 2130: ±170°).
	PanRangeDeg float64
	// TiltMinDeg and TiltMaxDeg bound the tilt axis (downward from
	// horizontal).
	TiltMinDeg, TiltMaxDeg float64
	// RangeM is the maximum distance at which photos are useful.
	RangeM float64
}

// DefaultMount returns an AXIS-2130-like ceiling mount at p facing
// forwardDeg.
func DefaultMount(p Point, forwardDeg float64) Mount {
	return Mount{
		Position:    p,
		ForwardDeg:  forwardDeg,
		PanRangeDeg: 170,
		TiltMinDeg:  0,
		TiltMaxDeg:  90,
		RangeM:      15,
	}
}

// Aim solves the head orientation that points the camera at target and
// reports whether the target is coverable (inside the pan/tilt envelope
// and within range). The zoom is chosen so that targets at different
// distances appear at similar view sizes, as the paper's experimental
// setup configured ("each camera ... automatically tune its zoom level
// based on the distance").
func (m Mount) Aim(target Point) (Orientation, bool) {
	d := target.Sub(m.Position)
	horiz := math.Hypot(d.X, d.Y)
	dist := m.Position.Dist(target)
	if dist > m.RangeM || dist == 0 {
		return Orientation{}, false
	}

	absPan := math.Atan2(d.Y, d.X) * 180 / math.Pi
	pan := normDeg(absPan - m.ForwardDeg)
	if math.Abs(pan) > m.PanRangeDeg {
		return Orientation{}, false
	}

	// Tilt downward from horizontal: positive when the target is below the
	// camera.
	tilt := math.Atan2(-d.Z, horiz) * 180 / math.Pi
	if tilt < m.TiltMinDeg || tilt > m.TiltMaxDeg {
		return Orientation{}, false
	}

	// Normalized zoom: proportional to distance so view size stays roughly
	// constant.
	zoom := 1 + 3*(dist/m.RangeM)
	return Orientation{Pan: pan, Tilt: tilt, Zoom: zoom}, true
}

// Covers reports whether the mount can photograph target.
func (m Mount) Covers(target Point) bool {
	_, ok := m.Aim(target)
	return ok
}

// normDeg normalizes an angle to (-180, 180].
func normDeg(a float64) float64 {
	a = math.Mod(a, 360)
	if a > 180 {
		a -= 360
	} else if a <= -180 {
		a += 360
	}
	return a
}

// NormDeg normalizes an angle in degrees to the interval (-180, 180].
func NormDeg(a float64) float64 { return normDeg(a) }

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates from a to b by fraction t ∈ [0, 1].
func Lerp(a, b, t float64) float64 {
	return a + (b-a)*Clamp(t, 0, 1)
}

// LerpOrientation interpolates between two head positions; used by the
// camera emulator to model where an interrupted movement actually stopped.
func LerpOrientation(a, b Orientation, t float64) Orientation {
	return Orientation{
		Pan:  Lerp(a.Pan, b.Pan, t),
		Tilt: Lerp(a.Tilt, b.Tilt, t),
		Zoom: Lerp(a.Zoom, b.Zoom, t),
	}
}
