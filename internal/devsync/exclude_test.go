package devsync

import (
	"errors"
	"sync"
	"testing"
)

func TestExclusionsBasics(t *testing.T) {
	x := NewExclusions()
	if x.Len() != 0 || x.Excluded("cam-1") {
		t.Fatal("fresh exclusion set is not empty")
	}
	first := errors.New("dial failed")
	x.Mark("cam-1", first)
	x.Mark("cam-1", errors.New("later failure"))
	x.Mark("cam-2", nil)
	if !x.Excluded("cam-1") || !x.Excluded("cam-2") {
		t.Error("marked devices not excluded")
	}
	if x.Excluded("cam-3") {
		t.Error("unmarked device excluded")
	}
	if x.Len() != 2 {
		t.Errorf("Len = %d, want 2", x.Len())
	}
	ids := x.IDs()
	if len(ids) != 2 || ids[0] != "cam-1" || ids[1] != "cam-2" {
		t.Errorf("IDs = %v, want sorted [cam-1 cam-2]", ids)
	}
}

func TestExclusionsConcurrent(t *testing.T) {
	x := NewExclusions()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids := []string{"a", "b", "c", "d"}
			for j := 0; j < 100; j++ {
				x.Mark(ids[(i+j)%len(ids)], errors.New("x"))
				_ = x.Excluded(ids[j%len(ids)])
				_ = x.IDs()
			}
		}(i)
	}
	wg.Wait()
	if x.Len() != 4 {
		t.Errorf("Len = %d, want 4", x.Len())
	}
}
