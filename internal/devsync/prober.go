package devsync

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"aorta/internal/comm"
)

// Candidate is the probe outcome for one candidate device.
type Candidate struct {
	ID string
	// Busy reflects the device's self-reported busy flag at probe time.
	Busy bool
	// Status is the device's physical status, fed into the cost model.
	Status json.RawMessage
	// RTT is the probe round-trip time.
	RTT time.Duration
}

// ProbeReport summarizes one candidate-set probe.
type ProbeReport struct {
	// Available are the candidates that answered the probe, in input
	// order.
	Available []Candidate
	// Excluded are the device IDs that failed or timed out and were
	// dropped from device-selection optimization (paper §4).
	Excluded []string
	// Suppressed is the subset of Excluded that was never dialed: those
	// devices are inside the transport pool's dial-failure backoff window,
	// so the probe round skipped them at zero network cost.
	Suppressed []string
	// Elapsed is the wall (clock) time of the whole concurrent probe
	// round.
	Elapsed time.Duration
}

// Prober checks the current availability of candidate devices before the
// optimizer estimates their costs, and gathers their physical status in
// the same exchange.
type Prober struct {
	layer *comm.Layer
}

// NewProber returns a prober over the communication layer.
func NewProber(layer *comm.Layer) *Prober {
	return &Prober{layer: layer}
}

// ProbeCandidates probes every candidate concurrently over pooled
// sessions — consecutive batches reuse live connections instead of
// re-dialing each camera. Devices that fail to answer within their type's
// TIMEOUT are excluded; devices inside the pool's dial-failure backoff
// are excluded without a dial and additionally listed as Suppressed; the
// rest are returned with their physical status.
func (p *Prober) ProbeCandidates(ctx context.Context, ids []string) *ProbeReport {
	start := time.Now()
	results := make([]*Candidate, len(ids))
	suppressed := make([]bool, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			res, err := p.layer.Probe(ctx, id)
			if err != nil {
				suppressed[i] = errors.Is(err, comm.ErrBackoff)
				return
			}
			results[i] = &Candidate{ID: id, Busy: res.Busy, Status: res.Status, RTT: res.RTT}
		}(i, id)
	}
	wg.Wait()

	report := &ProbeReport{Elapsed: time.Since(start)}
	for i, r := range results {
		if r == nil {
			report.Excluded = append(report.Excluded, ids[i])
			if suppressed[i] {
				report.Suppressed = append(report.Suppressed, ids[i])
			}
			continue
		}
		report.Available = append(report.Available, *r)
	}
	return report
}
