// Package devsync implements Aorta's device synchronization mechanisms
// (paper §4): a locking mechanism that prevents concurrent actions from
// interleaving on a single physical device, and a probing mechanism that
// checks candidate availability (and collects physical status) before
// device-selection optimization.
package devsync

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"aorta/internal/vclock"
)

// ErrNotLocked is returned by Unlock when the caller does not hold the
// lock.
var ErrNotLocked = errors.New("devsync: device not locked by this holder")

// LockStats aggregates per-device locking metrics.
type LockStats struct {
	Acquisitions int64
	Contentions  int64 // acquisitions that had to wait
	TotalWait    time.Duration
	// Expirations counts leases revoked by their TTL (see LockWithLease).
	Expirations int64
	// Reclamations counts locks force-released by Reclaim (the failure
	// detector's path for locks stranded on Down devices).
	Reclamations int64
}

type devLock struct {
	held    bool
	holder  string
	gen     uint64          // increments on every grant; identifies lease owners
	waiters []chan struct{} // FIFO
	stats   LockStats
}

// LockManager provides exclusive per-device locks. A device selected to
// execute an action is locked until the action's code block returns;
// subsequent actions on the device cannot start before it is unlocked.
type LockManager struct {
	clk vclock.Clock

	mu    sync.Mutex
	locks map[string]*devLock
}

// NewLockManager returns an empty lock manager using clk to measure wait
// times.
func NewLockManager(clk vclock.Clock) *LockManager {
	return &LockManager{clk: clk, locks: make(map[string]*devLock)}
}

func (m *LockManager) get(id string) *devLock {
	l, ok := m.locks[id]
	if !ok {
		l = &devLock{}
		m.locks[id] = l
	}
	return l
}

// TryLock acquires the device lock without waiting. holder is a
// description (query/request id) recorded for introspection.
func (m *LockManager) TryLock(id, holder string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.get(id)
	if l.held {
		return false
	}
	l.held = true
	l.holder = holder
	l.gen++
	l.stats.Acquisitions++
	return true
}

// Lock acquires the device lock, waiting in FIFO order behind earlier
// requests. It returns ctx.Err() if the context is cancelled while
// waiting.
func (m *LockManager) Lock(ctx context.Context, id, holder string) error {
	m.mu.Lock()
	l := m.get(id)
	if !l.held {
		l.held = true
		l.holder = holder
		l.gen++
		l.stats.Acquisitions++
		m.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	l.waiters = append(l.waiters, ch)
	l.stats.Contentions++
	start := m.clk.Now()
	m.mu.Unlock()

	select {
	case <-ch:
		m.mu.Lock()
		// The generation was advanced by the releaseLocked that signalled
		// us; this acquisition owns that generation.
		l.holder = holder
		l.stats.Acquisitions++
		l.stats.TotalWait += m.clk.Since(start)
		m.mu.Unlock()
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		// Remove our waiter; if Unlock already signalled us we must pass
		// the lock on.
		signalled := true
		for i, w := range l.waiters {
			if w == ch {
				l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
				signalled = false
				break
			}
		}
		if signalled {
			m.releaseLocked(l)
		}
		m.mu.Unlock()
		return fmt.Errorf("devsync: lock %s: %w", id, ctx.Err())
	}
}

// Unlock releases the device lock held by holder and hands it to the next
// FIFO waiter, if any.
func (m *LockManager) Unlock(id, holder string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.get(id)
	if !l.held || l.holder != holder {
		return fmt.Errorf("%w: %s by %q", ErrNotLocked, id, holder)
	}
	m.releaseLocked(l)
	return nil
}

// Reclaim force-releases the device lock regardless of holder and hands
// it to the next FIFO waiter. It is the failure detector's remedy for
// locks stranded by a device that went Down mid-action: the holder's
// in-flight attempt cannot complete, so queued requests would otherwise
// wait for the full lease TTL (or forever under plain locks). The
// generation advance invalidates any lease on the old grant, so a
// holder that does come back gets ErrNotLocked instead of releasing the
// new holder's lock. Returns whether a held lock was actually reclaimed.
func (m *LockManager) Reclaim(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.locks[id]
	if !ok || !l.held {
		return false
	}
	l.stats.Reclamations++
	m.releaseLocked(l)
	return true
}

// releaseLocked passes the lock to the next waiter or frees it, advancing
// the generation so any lease held on the previous grant is invalidated
// immediately (including during the handoff window). Caller must hold
// m.mu.
func (m *LockManager) releaseLocked(l *devLock) {
	l.holder = ""
	l.gen++
	if len(l.waiters) == 0 {
		l.held = false
		return
	}
	next := l.waiters[0]
	l.waiters = l.waiters[1:]
	// Lock stays held; the waiter fills in holder when it wakes.
	close(next)
}

// Holder returns the current lock holder of the device.
func (m *LockManager) Holder(id string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.locks[id]
	if !ok || !l.held {
		return "", false
	}
	return l.holder, true
}

// Locked reports whether the device is currently locked.
func (m *LockManager) Locked(id string) bool {
	_, ok := m.Holder(id)
	return ok
}

// Waiters returns the number of requests queued on the device lock.
func (m *LockManager) Waiters(id string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.locks[id]
	if !ok {
		return 0
	}
	return len(l.waiters)
}

// Stats returns a copy of the device's locking statistics.
func (m *LockManager) Stats(id string) LockStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.locks[id]
	if !ok {
		return LockStats{}
	}
	return l.stats
}

// WithLock runs fn while holding the device lock.
func (m *LockManager) WithLock(ctx context.Context, id, holder string, fn func(context.Context) error) error {
	if err := m.Lock(ctx, id, holder); err != nil {
		return err
	}
	defer func() {
		_ = m.Unlock(id, holder)
	}()
	return fn(ctx)
}
