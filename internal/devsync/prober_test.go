package devsync

import (
	"context"
	"testing"
	"time"

	"aorta/internal/comm"
	"aorta/internal/device"
	"aorta/internal/device/camera"
	"aorta/internal/geo"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
)

// proberFixture serves three cameras over an in-memory network.
func proberFixture(t *testing.T) (*Prober, *netsim.Network, []*camera.Camera) {
	t.Helper()
	clk := vclock.NewScaled(100)
	network := netsim.NewNetwork(clk, 1)
	reg, err := profile.DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	layer := comm.New(network, clk, reg)
	layer.SetTimeout("camera", 2*time.Second)
	var cams []*camera.Camera
	for _, id := range []string{"cam-1", "cam-2", "cam-3"} {
		cam := camera.New(id, geo.DefaultMount(geo.Point{Z: 3}, 0), clk)
		cams = append(cams, cam)
		l, err := network.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		srv := device.Serve(l, cam)
		t.Cleanup(func() { srv.Close() })
		if err := layer.Register(comm.DeviceInfo{ID: id, Type: "camera", Addr: id}); err != nil {
			t.Fatal(err)
		}
	}
	return NewProber(layer), network, cams
}

func TestProbeAllAvailable(t *testing.T) {
	p, _, _ := proberFixture(t)
	report := p.ProbeCandidates(context.Background(), []string{"cam-1", "cam-2", "cam-3"})
	if len(report.Available) != 3 || len(report.Excluded) != 0 {
		t.Fatalf("report = %+v", report)
	}
	// Input order preserved.
	for i, want := range []string{"cam-1", "cam-2", "cam-3"} {
		if report.Available[i].ID != want {
			t.Errorf("Available[%d] = %s, want %s", i, report.Available[i].ID, want)
		}
	}
	for _, c := range report.Available {
		if len(c.Status) == 0 {
			t.Errorf("candidate %s has no status", c.ID)
		}
	}
}

// TestProbeExcludesMalfunctioning is the §4 requirement: malfunctioning
// devices are automatically excluded from device-selection optimization.
func TestProbeExcludesMalfunctioning(t *testing.T) {
	p, network, _ := proberFixture(t)
	network.SetLink("cam-2", netsim.LinkConfig{Down: true})
	report := p.ProbeCandidates(context.Background(), []string{"cam-1", "cam-2", "cam-3"})
	if len(report.Available) != 2 {
		t.Fatalf("available = %v", report.Available)
	}
	if len(report.Excluded) != 1 || report.Excluded[0] != "cam-2" {
		t.Fatalf("excluded = %v", report.Excluded)
	}
}

// TestProbeTimeoutBoundsRound: a blackholed device must not stall the
// whole probe round beyond the TIMEOUT.
func TestProbeTimeoutBoundsRound(t *testing.T) {
	p, network, _ := proberFixture(t)
	network.SetLink("cam-3", netsim.LinkConfig{Blackhole: true})
	start := time.Now()
	report := p.ProbeCandidates(context.Background(), []string{"cam-1", "cam-2", "cam-3"})
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("probe round took %v wall time", wall)
	}
	if len(report.Excluded) != 1 || report.Excluded[0] != "cam-3" {
		t.Fatalf("excluded = %v", report.Excluded)
	}
}

func TestProbeReportsBusy(t *testing.T) {
	p, _, cams := proberFixture(t)
	// Start a long move on cam-1 in the background.
	done := make(chan struct{})
	go func() {
		defer close(done)
		args := []byte(`{"pan":170,"zoom":1}`)
		_, _ = cams[0].Exec(context.Background(), "move", args)
	}()
	for i := 0; i < 2000 && !cams[0].Busy(); i++ {
		time.Sleep(time.Millisecond)
	}
	report := p.ProbeCandidates(context.Background(), []string{"cam-1", "cam-2"})
	<-done
	if len(report.Available) != 2 {
		t.Fatalf("available = %v", report.Available)
	}
	if !report.Available[0].Busy {
		t.Error("cam-1 not reported busy during move")
	}
	if report.Available[1].Busy {
		t.Error("idle cam-2 reported busy")
	}
}

func TestProbeEmptyCandidateSet(t *testing.T) {
	p, _, _ := proberFixture(t)
	report := p.ProbeCandidates(context.Background(), nil)
	if len(report.Available) != 0 || len(report.Excluded) != 0 {
		t.Fatalf("report = %+v", report)
	}
}

func TestProbeUnknownCandidateExcluded(t *testing.T) {
	p, _, _ := proberFixture(t)
	report := p.ProbeCandidates(context.Background(), []string{"cam-1", "ghost"})
	if len(report.Available) != 1 || report.Available[0].ID != "cam-1" {
		t.Fatalf("available = %v", report.Available)
	}
	if len(report.Excluded) != 1 || report.Excluded[0] != "ghost" {
		t.Fatalf("excluded = %v", report.Excluded)
	}
}
