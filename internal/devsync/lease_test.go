package devsync

import (
	"context"
	"errors"
	"testing"
	"time"

	"aorta/internal/vclock"
)

func TestLeaseReleaseBeforeExpiry(t *testing.T) {
	m := NewLockManager(vclock.Real{})
	lease, err := m.LockWithLease(context.Background(), "cam", "q1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Locked("cam") {
		t.Fatal("device not locked by lease")
	}
	if lease.Holder() != "q1" {
		t.Errorf("holder = %q", lease.Holder())
	}
	if err := lease.Release(); err != nil {
		t.Fatal(err)
	}
	if m.Locked("cam") {
		t.Error("device still locked after Release")
	}
	if err := lease.Release(); !errors.Is(err, ErrNotLocked) {
		t.Errorf("second Release = %v, want ErrNotLocked", err)
	}
}

func TestLeaseExpiresAndHandsOff(t *testing.T) {
	clk := vclock.NewScaled(100)
	m := NewLockManager(clk)
	lease, err := m.LockWithLease(context.Background(), "cam", "crashed-worker", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A healthy worker queues behind the doomed lease.
	acquired := make(chan struct{})
	go func() {
		if err := m.Lock(context.Background(), "cam", "healthy"); err == nil {
			close(acquired)
		}
	}()
	waitFor(t, func() bool { return m.Waiters("cam") == 1 })

	// The crashed worker never releases; the TTL (2 virtual seconds =
	// 20ms wall) must revoke the lease and admit the waiter.
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("lease never expired; waiter starved")
	}
	if h, _ := m.Holder("cam"); h != "healthy" {
		t.Errorf("holder after expiry = %q", h)
	}
	if !lease.Expired() {
		t.Error("lease does not report expired")
	}
	if err := lease.Release(); !errors.Is(err, ErrNotLocked) {
		t.Errorf("Release after expiry = %v, want ErrNotLocked", err)
	}
	if st := m.Stats("cam"); st.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", st.Expirations)
	}
}

func TestLeaseExpiryDoesNotRevokeSuccessor(t *testing.T) {
	clk := vclock.NewScaled(100)
	m := NewLockManager(clk)
	lease1, err := m.LockWithLease(context.Background(), "cam", "q1", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := lease1.Release(); err != nil {
		t.Fatal(err)
	}
	// q2 takes the lock; q1's (cancelled) timer and generation must not
	// touch it even after q1's original TTL passes.
	if !m.TryLock("cam", "q2") {
		t.Fatal("TryLock failed on free device")
	}
	time.Sleep(50 * time.Millisecond) // 5 virtual seconds > q1's TTL
	if h, ok := m.Holder("cam"); !ok || h != "q2" {
		t.Fatalf("holder = %q, %v; q2 lost the lock", h, ok)
	}
	if st := m.Stats("cam"); st.Expirations != 0 {
		t.Errorf("expirations = %d, want 0", st.Expirations)
	}
}

func TestLeaseStaleExpiryAfterHandoff(t *testing.T) {
	// A lease that expires after its lock has already been released and
	// re-granted must be a no-op.
	clk := vclock.NewScaled(100)
	m := NewLockManager(clk)
	lease, err := m.LockWithLease(context.Background(), "cam", "q1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = m.Lock(context.Background(), "cam", "q2")
	}()
	waitFor(t, func() bool { return m.Waiters("cam") == 1 })
	if err := lease.Release(); err != nil {
		t.Fatal(err)
	}
	<-done
	// Let q1's TTL pass while q2 holds.
	time.Sleep(30 * time.Millisecond)
	if h, _ := m.Holder("cam"); h != "q2" {
		t.Fatalf("holder = %q; stale expiry revoked the successor", h)
	}
}

func TestLeaseInvalidTTL(t *testing.T) {
	m := NewLockManager(vclock.Real{})
	if _, err := m.LockWithLease(context.Background(), "cam", "q", 0); err == nil {
		t.Error("zero TTL accepted")
	}
	if _, err := m.LockWithLease(context.Background(), "cam", "q", -time.Second); err == nil {
		t.Error("negative TTL accepted")
	}
	if m.Locked("cam") {
		t.Error("device locked despite rejected lease")
	}
}

func TestLeaseRespectsContext(t *testing.T) {
	m := NewLockManager(vclock.Real{})
	m.TryLock("cam", "holder")
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := m.LockWithLease(ctx, "cam", "q", time.Hour)
		errc <- err
	}()
	waitFor(t, func() bool { return m.Waiters("cam") == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestLeaseNotExpiredWhileHeld(t *testing.T) {
	m := NewLockManager(vclock.Real{})
	lease, err := m.LockWithLease(context.Background(), "cam", "q", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Expired() {
		t.Error("fresh lease reports expired")
	}
	if err := lease.Release(); err != nil {
		t.Fatal(err)
	}
	if lease.Expired() {
		t.Error("released lease reports expired (it ended cleanly)")
	}
}
