package devsync

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aorta/internal/vclock"
)

func newLM() *LockManager { return NewLockManager(vclock.Real{}) }

func TestTryLockBasics(t *testing.T) {
	m := newLM()
	if !m.TryLock("camera-1", "q1") {
		t.Fatal("TryLock on free device failed")
	}
	if m.TryLock("camera-1", "q2") {
		t.Fatal("TryLock on held device succeeded")
	}
	if !m.TryLock("camera-2", "q2") {
		t.Fatal("TryLock on a different device failed")
	}
	if h, ok := m.Holder("camera-1"); !ok || h != "q1" {
		t.Errorf("Holder = %q, %v", h, ok)
	}
	if !m.Locked("camera-1") {
		t.Error("Locked = false for held device")
	}
}

func TestUnlockValidation(t *testing.T) {
	m := newLM()
	if err := m.Unlock("camera-1", "q1"); !errors.Is(err, ErrNotLocked) {
		t.Fatalf("Unlock of free device = %v, want ErrNotLocked", err)
	}
	m.TryLock("camera-1", "q1")
	if err := m.Unlock("camera-1", "q2"); !errors.Is(err, ErrNotLocked) {
		t.Fatalf("Unlock by wrong holder = %v, want ErrNotLocked", err)
	}
	if err := m.Unlock("camera-1", "q1"); err != nil {
		t.Fatalf("Unlock by holder = %v", err)
	}
	if m.Locked("camera-1") {
		t.Error("device still locked after Unlock")
	}
}

func TestLockWaitsAndHandsOff(t *testing.T) {
	m := newLM()
	if err := m.Lock(context.Background(), "cam", "q1"); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		if err := m.Lock(context.Background(), "cam", "q2"); err == nil {
			close(acquired)
		}
	}()
	// The second locker must be queued, not acquired.
	waitFor(t, func() bool { return m.Waiters("cam") == 1 })
	select {
	case <-acquired:
		t.Fatal("second Lock acquired while held")
	default:
	}
	if err := m.Unlock("cam", "q1"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("handoff never happened")
	}
	if h, _ := m.Holder("cam"); h != "q2" {
		t.Errorf("holder after handoff = %q", h)
	}
}

func TestLockFIFOOrder(t *testing.T) {
	m := newLM()
	const n = 5
	if err := m.Lock(context.Background(), "cam", "holder"); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := m.Lock(context.Background(), "cam", "w"); err != nil {
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			_ = m.Unlock("cam", "w")
		}(i)
		// Serialize waiter registration so FIFO order is observable.
		waitFor(t, func() bool { return m.Waiters("cam") == i+1 })
	}
	if err := m.Unlock("cam", "holder"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestLockContextCancelled(t *testing.T) {
	m := newLM()
	if err := m.Lock(context.Background(), "cam", "q1"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- m.Lock(ctx, "cam", "q2") }()
	waitFor(t, func() bool { return m.Waiters("cam") == 1 })
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Lock never returned")
	}
	if m.Waiters("cam") != 0 {
		t.Error("cancelled waiter still queued")
	}
	// The lock must still function.
	if err := m.Unlock("cam", "q1"); err != nil {
		t.Fatal(err)
	}
	if !m.TryLock("cam", "q3") {
		t.Error("lock unusable after cancelled waiter")
	}
}

// TestMutualExclusionStress: many goroutines hammer one device; at most
// one may be inside the critical section at any moment.
func TestMutualExclusionStress(t *testing.T) {
	m := newLM()
	var inside atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := m.Lock(context.Background(), "cam", "w"); err != nil {
					t.Error(err)
					return
				}
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				inside.Add(-1)
				_ = m.Unlock("cam", "w")
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations", v)
	}
	st := m.Stats("cam")
	if st.Acquisitions != 1000 {
		t.Errorf("acquisitions = %d, want 1000", st.Acquisitions)
	}
}

func TestStatsCountContention(t *testing.T) {
	m := newLM()
	_ = m.Lock(context.Background(), "cam", "q1")
	done := make(chan struct{})
	go func() {
		_ = m.Lock(context.Background(), "cam", "q2")
		close(done)
	}()
	waitFor(t, func() bool { return m.Waiters("cam") == 1 })
	_ = m.Unlock("cam", "q1")
	<-done
	st := m.Stats("cam")
	if st.Contentions != 1 {
		t.Errorf("contentions = %d, want 1", st.Contentions)
	}
	if st.Acquisitions != 2 {
		t.Errorf("acquisitions = %d, want 2", st.Acquisitions)
	}
}

func TestStatsUnknownDevice(t *testing.T) {
	m := newLM()
	if st := m.Stats("ghost"); st != (LockStats{}) {
		t.Errorf("stats for unknown device = %+v", st)
	}
	if m.Waiters("ghost") != 0 {
		t.Error("waiters for unknown device != 0")
	}
}

func TestWithLock(t *testing.T) {
	m := newLM()
	ran := false
	err := m.WithLock(context.Background(), "cam", "q1", func(context.Context) error {
		ran = true
		if !m.Locked("cam") {
			t.Error("device not locked inside WithLock")
		}
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("WithLock err=%v ran=%v", err, ran)
	}
	if m.Locked("cam") {
		t.Error("device still locked after WithLock")
	}
}

func TestWithLockPropagatesError(t *testing.T) {
	m := newLM()
	sentinel := errors.New("action failed")
	err := m.WithLock(context.Background(), "cam", "q1", func(context.Context) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if m.Locked("cam") {
		t.Error("lock leaked after failing action")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
