package devsync

// Deterministic Manual-clock tests for lease expiry and detector-driven
// reclamation: a device dies holding a lock, and the queued request
// acquires it after Reclaim (immediately) or after the lease TTL.

import (
	"context"
	"errors"
	"testing"
	"time"

	"aorta/internal/vclock"
)

// TestReclaimHandsLockToWaiter: the holder's device goes Down; Reclaim
// frees the lock without waiting for any TTL, the FIFO waiter acquires
// it, and the dead holder's lease can no longer release the new grant.
func TestReclaimHandsLockToWaiter(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	m := NewLockManager(clk)

	lease, err := m.LockWithLease(context.Background(), "cam-1", "dead-holder", time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	acquired := make(chan error, 1)
	go func() {
		acquired <- m.Lock(context.Background(), "cam-1", "queued-request")
	}()
	// Wait until the queued request is actually parked on the lock.
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiters("cam-1") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never parked on the lock")
		}
		time.Sleep(time.Millisecond)
	}

	// The failure detector declares cam-1's holder dead: reclaim.
	if !m.Reclaim("cam-1") {
		t.Fatal("Reclaim found nothing to reclaim")
	}
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("queued request failed to acquire after reclaim: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request still blocked after reclamation")
	}
	if holder, _ := m.Holder("cam-1"); holder != "queued-request" {
		t.Fatalf("holder = %q, want queued-request", holder)
	}
	if st := m.Stats("cam-1"); st.Reclamations != 1 {
		t.Errorf("reclamations = %d, want 1", st.Reclamations)
	}

	// The dead holder's lease was superseded by the generation advance:
	// its Release must not free the new holder's lock.
	if err := lease.Release(); !errors.Is(err, ErrNotLocked) {
		t.Errorf("stale lease release err = %v, want ErrNotLocked", err)
	}
	if holder, _ := m.Holder("cam-1"); holder != "queued-request" {
		t.Errorf("stale release stole the lock (holder %q)", holder)
	}
	if err := m.Unlock("cam-1", "queued-request"); err != nil {
		t.Errorf("new holder could not unlock: %v", err)
	}
}

// TestLeaseExpiryUnblocksWaiter: without a detector, the TTL is the
// fallback — advancing the Manual clock past the lease hands the lock to
// the queued request deterministically.
func TestLeaseExpiryUnblocksWaiter(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	m := NewLockManager(clk)

	if _, err := m.LockWithLease(context.Background(), "cam-1", "hung-holder", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		acquired <- m.Lock(context.Background(), "cam-1", "queued-request")
	}()
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiters("cam-1") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never parked on the lock")
		}
		time.Sleep(time.Millisecond)
	}

	clk.Advance(11 * time.Second)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("queued request failed after lease expiry: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request still blocked after the lease expired")
	}
	st := m.Stats("cam-1")
	if st.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", st.Expirations)
	}
	if st.Reclamations != 0 {
		t.Errorf("reclamations = %d, want 0", st.Reclamations)
	}
}

// TestReclaimIdleDevice: reclaiming an unheld lock is a no-op.
func TestReclaimIdleDevice(t *testing.T) {
	m := NewLockManager(vclock.NewManual(time.Unix(0, 0)))
	if m.Reclaim("nothing") {
		t.Error("Reclaim reported success on an unheld lock")
	}
}
