package devsync

import (
	"sort"
	"sync"
)

// Exclusions tracks devices that failed *during execution* of a dispatch
// round, after the probing mechanism already vouched for them. The paper's
// probing (§4) only protects the window before scheduling; a device that
// dies between probe and action would otherwise be re-selected by every
// retry round. Marking it here removes it from the residual candidate
// sets, so failover always moves to a different device. Safe for
// concurrent use by the per-device executor goroutines.
type Exclusions struct {
	mu     sync.Mutex
	failed map[string]error
}

// NewExclusions returns an empty exclusion set.
func NewExclusions() *Exclusions {
	return &Exclusions{failed: make(map[string]error)}
}

// Mark records that id failed with err; later Excluded(id) calls report
// true. The first error per device is kept.
func (x *Exclusions) Mark(id string, err error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, dup := x.failed[id]; !dup {
		x.failed[id] = err
	}
}

// Excluded reports whether id has been marked failed.
func (x *Exclusions) Excluded(id string) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	_, ok := x.failed[id]
	return ok
}

// Len returns the number of excluded devices.
func (x *Exclusions) Len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.failed)
}

// IDs returns the excluded device IDs, sorted for deterministic logging.
func (x *Exclusions) IDs() []string {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]string, 0, len(x.failed))
	for id := range x.failed {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
