package devsync

import (
	"context"
	"fmt"
	"time"
)

// Lease is a held device lock with a time-to-live. The paper lists "more
// sophisticated device synchronization mechanisms" as future work; leases
// address the deployment problem plain locks have with unreliable
// holders: an engine worker that crashes or hangs mid-action would pin
// the device forever, whereas a lease expires and hands the device to the
// next waiter.
type Lease struct {
	m      *LockManager
	id     string
	holder string
	gen    uint64
	stop   chan struct{}
}

// LockWithLease acquires the device lock like Lock, but with a TTL: if
// Release is not called within ttl of acquisition the lock is revoked and
// passed on. The returned lease's Release is idempotent.
func (m *LockManager) LockWithLease(ctx context.Context, id, holder string, ttl time.Duration) (*Lease, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("devsync: lease ttl must be positive, got %v", ttl)
	}
	if err := m.Lock(ctx, id, holder); err != nil {
		return nil, err
	}
	m.mu.Lock()
	l := m.get(id)
	gen := l.gen
	m.mu.Unlock()

	lease := &Lease{m: m, id: id, holder: holder, gen: gen, stop: make(chan struct{})}
	go func() {
		select {
		case <-lease.stop:
		case <-m.clk.After(ttl):
			lease.expire()
		}
	}()
	return lease, nil
}

// Holder returns the lease's holder description.
func (l *Lease) Holder() string { return l.holder }

// Release returns the device lock. It reports ErrNotLocked when the lease
// already expired (or was released before).
func (l *Lease) Release() error {
	select {
	case <-l.stop:
		// Already released or expired.
		return fmt.Errorf("%w: lease on %s already ended", ErrNotLocked, l.id)
	default:
	}
	close(l.stop)

	l.m.mu.Lock()
	defer l.m.mu.Unlock()
	dl := l.m.get(l.id)
	if !dl.held || dl.gen != l.gen {
		return fmt.Errorf("%w: lease on %s superseded", ErrNotLocked, l.id)
	}
	l.m.releaseLocked(dl)
	return nil
}

// expire force-releases the lock if this lease still holds it.
func (l *Lease) expire() {
	l.m.mu.Lock()
	defer l.m.mu.Unlock()
	dl := l.m.get(l.id)
	if dl.held && dl.gen == l.gen {
		dl.stats.Expirations++
		l.m.releaseLocked(dl)
	}
}

// Expired reports whether the lease has ended without Release.
func (l *Lease) Expired() bool {
	select {
	case <-l.stop:
		return false // explicitly released
	default:
	}
	l.m.mu.Lock()
	defer l.m.mu.Unlock()
	dl := l.m.get(l.id)
	return !dl.held || dl.gen != l.gen
}
