package aorta

import (
	"net"
	"time"

	"aorta/internal/comm"
	"aorta/internal/core"
	"aorta/internal/device"
	"aorta/internal/device/camera"
	"aorta/internal/device/mote"
	"aorta/internal/device/phone"
	"aorta/internal/geo"
	"aorta/internal/lab"
	"aorta/internal/liveness"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
)

// Engine is the Aorta pervasive query processing engine. Create one with
// NewEngine (custom wiring) or NewLab (a complete simulated testbed).
type Engine = core.Engine

// Config configures an Engine; zero values select production defaults.
type Config = core.Config

// ExecResult is the outcome of one Engine.Exec statement.
type ExecResult = core.ExecResult

// QueryInfo summarizes a registered continuous query.
type QueryInfo = core.Info

// Outcome records the completion (or failure) of one action request.
type Outcome = core.Outcome

// FailureKind classifies action failures.
type FailureKind = core.FailureKind

// MetricsSnapshot aggregates engine activity counters.
type MetricsSnapshot = core.MetricsSnapshot

// ActionContext carries execution context into an action implementation.
type ActionContext = core.ActionContext

// ActionFunc is the code block of a user-defined action.
type ActionFunc = core.ActionFunc

// ActionDef fully specifies a user action: profile, implementation and
// cost model.
type ActionDef = core.ActionDef

// StoredPhoto is one photo archived by the built-in photo() action.
type StoredPhoto = core.StoredPhoto

// DeviceInfo describes a device registered with the communication layer.
type DeviceInfo = comm.DeviceInfo

// Tuple is one row of a virtual device table.
type Tuple = comm.Tuple

// Point is a location on the floor plan, in metres.
type Point = geo.Point

// Mount is a PTZ camera's installation geometry.
type Mount = geo.Mount

// Orientation is a PTZ head position.
type Orientation = geo.Orientation

// Clock abstracts time so workloads can run scaled or manual.
type Clock = vclock.Clock

// Network is the in-memory simulated device network with per-link fault
// injection.
type Network = netsim.Network

// LinkConfig describes simulated link faults (latency, loss, outage).
type LinkConfig = netsim.LinkConfig

// Registry holds device catalogs, atomic operation costs and action
// profiles.
type Registry = profile.Registry

// ActionProfile describes an action's composition for the cost model.
type ActionProfile = profile.ActionProfile

// Lab is a complete simulated pervasive-computing testbed: devices,
// network and engine, pre-wired.
type Lab = lab.Lab

// LabConfig sizes a Lab; zero values give the paper's setup (2 cameras,
// 10 motes, 1 phone, 100× clock).
type LabConfig = lab.Config

// Failure kinds reported in MetricsSnapshot.Failures.
const (
	FailNone          = core.FailNone
	FailConnect       = core.FailConnect
	FailBlurred       = core.FailBlurred
	FailWrongPosition = core.FailWrongPosition
	FailStale         = core.FailStale
	FailOther         = core.FailOther
	FailRetried       = core.FailRetried
	FailNoDevice      = core.FailNoDevice
)

// Built-in device type names.
const (
	DeviceCamera = profile.DeviceCamera
	DeviceSensor = profile.DeviceSensor
	DevicePhone  = profile.DevicePhone
)

// LivenessState is a device's failure-detector state.
type LivenessState = liveness.State

// DeviceHealth is one device's failure-detector view (state, failure
// streak, since-when), as returned by Engine.LivenessSnapshot.
type DeviceHealth = liveness.DeviceHealth

// Failure-detector states reported in Engine.LivenessSnapshot.
const (
	DeviceUp      = liveness.Up
	DeviceSuspect = liveness.Suspect
	DeviceDown    = liveness.Down
)

// NewEngine builds an engine over a custom transport. Most applications
// use NewLab instead.
func NewEngine(cfg Config) (*Engine, error) { return core.New(cfg) }

// NewLab builds a complete simulated testbed: cameras, motes and phones
// served over an in-memory network, registered with a ready engine.
func NewLab(cfg LabConfig) (*Lab, error) { return lab.New(cfg) }

// NewNetwork creates an in-memory device network using clk for latency
// and seed for fault randomness.
func NewNetwork(clk Clock, seed int64) *Network { return netsim.NewNetwork(clk, seed) }

// NewScaledClock returns a clock running factor times faster than wall
// time; a 100× clock runs a 10-minute study in 6 seconds.
func NewScaledClock(factor float64) *vclock.Scaled { return vclock.NewScaled(factor) }

// RealClock returns the wall clock.
func RealClock() Clock { return vclock.Real{} }

// DefaultRegistry returns the built-in device catalogs (camera, sensor,
// phone) and system action library (photo, beep, blink, sendphoto,
// notify).
func DefaultRegistry() (*Registry, error) { return profile.DefaultRegistry() }

// DefaultMount returns an AXIS-2130-like ceiling mount at p facing
// forwardDeg (counter-clockwise degrees from +X).
func DefaultMount(p Point, forwardDeg float64) Mount { return geo.DefaultMount(p, forwardDeg) }

// ParseActionProfile parses an action-profile XML document.
func ParseActionProfile(data []byte) (*ActionProfile, error) { return profile.ParseAction(data) }

// Device-farm surface: emulated devices servable over any net.Listener
// (in-memory via Network.Listen, or real TCP), for deployments that keep
// the engine and the devices in separate processes.

// DeviceModel is one emulated physical device.
type DeviceModel = device.Model

// DeviceServer exposes a DeviceModel over a listener speaking the Aorta
// wire protocol.
type DeviceServer = device.Server

// Camera is an AXIS-2130-like PTZ camera emulator, complete with the
// interference semantics that make engine-side locking necessary.
type Camera = camera.Camera

// Mote is a MICA2-like sensor mote emulator.
type Mote = mote.Mote

// MoteConfig holds optional mote parameters.
type MoteConfig = mote.Config

// Phone is an MMS-capable phone emulator.
type Phone = phone.Phone

// ServeDevice serves model on l until the returned server is closed.
func ServeDevice(l net.Listener, model DeviceModel) *DeviceServer { return device.Serve(l, model) }

// NewCamera returns a PTZ camera emulator with the given mount geometry.
func NewCamera(id string, mount Mount, clk Clock) *Camera { return camera.New(id, mount, clk) }

// NewMote returns a sensor mote emulator at loc.
func NewMote(id string, loc Point, clk Clock, cfg MoteConfig) *Mote {
	return mote.New(id, loc, clk, cfg)
}

// NewPhone returns an in-coverage phone emulator.
func NewPhone(id, number, owner string, clk Clock) *Phone { return phone.New(id, number, owner, clk) }

// TCPDialer dials real TCP device connections for cross-process farms.
func TCPDialer(timeout time.Duration) Dialer { return &netsim.TCP{Timeout: timeout} }

// Dialer opens stream connections to device addresses.
type Dialer = netsim.Dialer
