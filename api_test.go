package aorta_test

// Tests of the public API surface, including the cross-process deployment
// path: emulated devices served over real TCP, an engine dialing them
// with the TCP transport — exactly what cmd/devfarm + cmd/aortad do.

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"aorta"
)

func TestPublicLabQueryRoundTrip(t *testing.T) {
	l, err := aorta.NewLab(aorta.LabConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx := context.Background()
	if err := l.Engine.Start(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := l.Engine.Exec(ctx, `SELECT s.id FROM sensor s WHERE s.battery > 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestPublicSchedulingSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := aorta.UniformWorkload(12, 6, rng)
	for _, alg := range []aorta.Scheduler{
		aorta.SchedulerLERFASRFE(), aorta.SchedulerSRFAE(), aorta.SchedulerLS(),
		aorta.SchedulerSA(), aorta.SchedulerRandom(),
	} {
		res, err := aorta.RunScheduler(alg, p, rng, aorta.DefaultAccounting())
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if res.Makespan <= 0 {
			t.Errorf("%s: makespan = %v", alg.Name(), res.Makespan)
		}
	}
	if _, err := aorta.SkewedWorkload(10, 5, 0.4, rng); err != nil {
		t.Fatal(err)
	}
	small := aorta.UniformWorkload(5, 3, rng)
	if _, err := aorta.RunScheduler(aorta.SchedulerOptimal(), small, rng, aorta.DefaultAccounting()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRegistryAndProfiles(t *testing.T) {
	reg, err := aorta.DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Action("photo"); !ok {
		t.Error("photo profile missing")
	}
	ap, err := aorta.ParseActionProfile([]byte(
		`<action name="wave" device_type="camera" exclusive="true"><seq><op name="pan" amount="pan_delta"/></seq></action>`))
	if err != nil {
		t.Fatal(err)
	}
	if ap.Name != "wave" || !ap.Exclusive {
		t.Errorf("profile = %+v", ap)
	}
}

// TestTCPFarmEndToEnd is the devfarm/aortad deployment in-process: devices
// on real loopback TCP, the engine dialing them via the TCP transport,
// the full snapshot query driving a camera.
func TestTCPFarmEndToEnd(t *testing.T) {
	clk := aorta.NewScaledClock(100)
	serve := func(m aorta.DeviceModel) string {
		t.Helper()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback unavailable: %v", err)
		}
		srv := aorta.ServeDevice(l, m)
		t.Cleanup(func() { srv.Close() })
		return l.Addr().String()
	}

	mount := aorta.DefaultMount(aorta.Point{X: 0, Y: 4, Z: 3}, 0)
	cam := aorta.NewCamera("camera-1", mount, clk)
	camAddr := serve(cam)
	moteLoc := aorta.Point{X: 5, Y: 4}
	mote := aorta.NewMote("mote-1", moteLoc, clk, aorta.MoteConfig{Seed: 3})
	moteAddr := serve(mote)

	eng, err := aorta.NewEngine(aorta.Config{
		Clock:  clk,
		Dialer: aorta.TCPDialer(2 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterDevice(aorta.DeviceInfo{
		ID: "camera-1", Type: aorta.DeviceCamera, Addr: camAddr,
	}, mount); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterDevice(aorta.DeviceInfo{
		ID: "mote-1", Type: aorta.DeviceSensor, Addr: moteAddr,
		Static: map[string]any{"loc": moteLoc, "depth": 1},
	}, aorta.Mount{}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if err := eng.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	if _, err := eng.Exec(ctx, `CREATE AQ snap AS
		SELECT photo(c.ip, s.loc, "photos/tcp")
		FROM sensor s, camera c
		WHERE s.accel_x > 500 AND coverage(c.id, s.loc)
		EVERY "2s"`); err != nil {
		t.Fatal(err)
	}
	mote.Stimulate("x", 900, 4*time.Second)

	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) && len(eng.Photos()) == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	photos := eng.Photos()
	if len(photos) == 0 {
		t.Fatalf("no photo over TCP; metrics=%+v outcomes=%d", eng.Metrics(), len(eng.Outcomes()))
	}
	if photos[0].DeviceID != "camera-1" || photos[0].Photo.Blurred {
		t.Errorf("photo = %+v", photos[0])
	}
	if cam.PhotosTaken() == 0 {
		t.Error("camera emulator saw no capture")
	}
}

// TestPublicUserActionOverLab registers a custom ActionDef through the
// public API and fires it from SQL.
func TestPublicUserActionOverLab(t *testing.T) {
	l, err := aorta.NewLab(aorta.LabConfig{Motes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx := context.Background()

	reg, err := aorta.DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	blink, _ := reg.Action("blink")
	fired := make(chan string, 4)
	def := &aorta.ActionDef{
		Name:    "flash",
		Profile: blink,
		Fn: func(ctx context.Context, actx *aorta.ActionContext, args []any) (any, error) {
			fired <- actx.DeviceID
			return actx.Engine.Layer().Exec(ctx, actx.DeviceID, "blink", nil)
		},
	}
	if err := l.Engine.RegisterUserAction(def); err != nil {
		t.Fatal(err)
	}
	if err := l.Engine.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Engine.Exec(ctx, `CREATE AQ flashq AS
		SELECT flash(s.id) FROM sensor s WHERE s.accel_x > 500 EVERY "2s"`); err != nil {
		t.Fatal(err)
	}
	l.StimulateMote(1, 900, 3*time.Second)
	select {
	case dev := <-fired:
		if dev != "mote-2" {
			t.Errorf("flash fired on %s, want mote-2", dev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flash action never fired")
	}
	// The mote actually blinked.
	waitUntil(t, 3*time.Second, func() bool {
		_, blinks := l.Motes[1].Counters()
		return blinks >= 1
	})
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	if !cond() {
		t.Fatal("condition never became true")
	}
}
